"""The metric-space interface peers live in.

The paper models peers as points of a metric space ``M = (V, d)`` whose
distance function describes pairwise latencies.  Every concrete metric in
this package implements :class:`MetricSpace`; game-layer code consumes the
cached dense :meth:`MetricSpace.distance_matrix`, which makes stretch and
cost computations pure numpy.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["MetricSpace", "MetricViolation", "check_metric_axioms"]


@dataclass(frozen=True)
class MetricViolation:
    """A witnessed violation of one of the metric axioms.

    Attributes
    ----------
    kind:
        One of ``"symmetry"``, ``"identity"``, ``"negativity"``,
        ``"triangle"``.
    indices:
        The offending point indices (2 for pairwise axioms, 3 for the
        triangle inequality).
    magnitude:
        How badly the axiom is violated (e.g. ``d(i,k) - d(i,j) - d(j,k)``
        for a triangle violation).
    """

    kind: str
    indices: Tuple[int, ...]
    magnitude: float


def check_metric_axioms(
    matrix: np.ndarray,
    rtol: float = 1e-9,
    atol: float = 1e-12,
    max_violations: int = 16,
) -> List[MetricViolation]:
    """Check a dense distance matrix against the metric axioms.

    Returns at most ``max_violations`` witnessed violations; an empty list
    means the matrix is a metric up to the given tolerances.  The triangle
    inequality is checked via one round of min-plus relaxation (``O(n^3)``,
    vectorized), which detects *any* triangle violation.
    """
    violations: List[MetricViolation] = []
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"distance matrix must be square, got {matrix.shape}")
    n = matrix.shape[0]

    diag = np.diagonal(matrix)
    for i in np.nonzero(diag != 0.0)[0]:
        violations.append(MetricViolation("identity", (int(i),), float(diag[i])))
        if len(violations) >= max_violations:
            return violations

    neg = np.argwhere(matrix < 0)
    for i, j in neg:
        violations.append(
            MetricViolation("negativity", (int(i), int(j)), float(matrix[i, j]))
        )
        if len(violations) >= max_violations:
            return violations

    asym = np.abs(matrix - matrix.T)
    tol = atol + rtol * np.maximum(np.abs(matrix), np.abs(matrix.T))
    bad = np.argwhere(asym > tol)
    for i, j in bad:
        if i < j:
            violations.append(
                MetricViolation(
                    "symmetry", (int(i), int(j)), float(asym[i, j])
                )
            )
            if len(violations) >= max_violations:
                return violations

    # Triangle inequality: d(i,k) <= d(i,j) + d(j,k) for all i, j, k.
    off_diag_zero = np.argwhere((matrix == 0) & ~np.eye(n, dtype=bool))
    for i, j in off_diag_zero[: max(0, max_violations - len(violations))]:
        violations.append(MetricViolation("identity", (int(i), int(j)), 0.0))
    if len(violations) >= max_violations:
        return violations
    for j in range(n):
        # slack[i, k] = d(i, j) + d(j, k) - d(i, k); negative => violation.
        slack = matrix[:, j][:, None] + matrix[j, :][None, :] - matrix
        tol3 = atol + rtol * np.abs(matrix)
        bad3 = np.argwhere(slack < -tol3)
        for i, k in bad3:
            violations.append(
                MetricViolation(
                    "triangle", (int(i), int(j), int(k)), float(-slack[i, k])
                )
            )
            if len(violations) >= max_violations:
                return violations
    return violations


class MetricSpace(abc.ABC):
    """Abstract base class for finite metric spaces of peers.

    Concrete subclasses implement :meth:`_compute_distance_matrix`; the
    dense matrix is computed once and cached.  Points are identified with
    the indices ``0..n-1`` throughout the library.
    """

    def __init__(self) -> None:
        self._cached_matrix: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def n(self) -> int:
        """Number of points (peers) in the space."""

    @abc.abstractmethod
    def _compute_distance_matrix(self) -> np.ndarray:
        """Compute the dense symmetric distance matrix (zero diagonal)."""

    # ------------------------------------------------------------------
    def distance_matrix(self) -> np.ndarray:
        """Dense distance matrix, computed lazily and cached.

        The returned array is marked read-only; callers needing to mutate it
        must copy first.
        """
        if self._cached_matrix is None:
            matrix = np.asarray(self._compute_distance_matrix(), dtype=float)
            if matrix.shape != (self.n, self.n):
                raise ValueError(
                    f"distance matrix has shape {matrix.shape}, "
                    f"expected {(self.n, self.n)}"
                )
            matrix.setflags(write=False)
            self._cached_matrix = matrix
        return self._cached_matrix

    def distance(self, i: int, j: int) -> float:
        """Distance between points ``i`` and ``j``."""
        return float(self.distance_matrix()[i, j])

    def validate(
        self, rtol: float = 1e-9, atol: float = 1e-12
    ) -> List[MetricViolation]:
        """Check the metric axioms; empty list means all hold."""
        return check_metric_axioms(self.distance_matrix(), rtol=rtol, atol=atol)

    def min_positive_distance(self) -> float:
        """Smallest strictly positive pairwise distance."""
        matrix = self.distance_matrix()
        off = matrix[~np.eye(self.n, dtype=bool)]
        positive = off[off > 0]
        if positive.size == 0:
            raise ValueError("metric has no positive distances")
        return float(positive.min())

    def diameter(self) -> float:
        """Largest pairwise distance."""
        if self.n == 0:
            return 0.0
        return float(self.distance_matrix().max())

    def __len__(self) -> int:
        return self.n
