"""Diagnostics for metric structure: growth bound and doubling constant.

Theorem 4.1's upper bound holds for arbitrary metrics, "including the
popular growth-bounded and doubling metrics".  These estimators measure how
growth-bounded / doubling a concrete finite metric actually is, so that
experiments can report the structure of the spaces they ran on.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.metrics.base import MetricSpace

__all__ = ["growth_constant", "doubling_constant_estimate", "ball_sizes"]


def ball_sizes(metric: MetricSpace, center: int, radii) -> np.ndarray:
    """``|B(center, r)|`` for each radius ``r`` (closed balls)."""
    row = metric.distance_matrix()[center]
    radii = np.asarray(radii, dtype=float)
    return (row[None, :] <= radii[:, None]).sum(axis=1)


def growth_constant(
    metric: MetricSpace, num_radii: int = 16
) -> float:
    """Max ratio ``|B(x, 2r)| / |B(x, r)|`` over sampled centers and radii.

    A metric is *growth-bounded* when this ratio is bounded by a constant.
    Radii are sampled geometrically between the smallest positive distance
    and the diameter.  Returns 1.0 for trivially small metrics.
    """
    n = metric.n
    if n <= 1:
        return 1.0
    d_min = metric.min_positive_distance()
    d_max = metric.diameter()
    if d_max <= 0:
        return 1.0
    radii = np.geomspace(d_min / 2.0, d_max, num=num_radii)
    worst = 1.0
    matrix = metric.distance_matrix()
    for center in range(n):
        row = matrix[center]
        small = (row[None, :] <= radii[:, None]).sum(axis=1)
        large = (row[None, :] <= (2.0 * radii)[:, None]).sum(axis=1)
        nonzero = small > 0
        if nonzero.any():
            worst = max(worst, float((large[nonzero] / small[nonzero]).max()))
    return worst


def doubling_constant_estimate(
    metric: MetricSpace, num_radii: int = 8, seed: Optional[int] = None
) -> int:
    """Greedy estimate of the doubling constant of a finite metric.

    The doubling constant is the smallest ``M`` such that every ball of
    radius ``2r`` is covered by ``M`` balls of radius ``r``.  Computing it
    exactly is a set-cover problem; this estimator uses the standard greedy
    ``r``-net construction inside each ball, which upper-bounds the true
    constant within a logarithmic factor and is the usual practical proxy.
    """
    n = metric.n
    if n <= 1:
        return 1
    matrix = metric.distance_matrix()
    d_min = metric.min_positive_distance()
    d_max = metric.diameter()
    if d_max <= 0:
        return 1
    rng = np.random.default_rng(seed)
    radii = np.geomspace(d_min, d_max / 2.0, num=num_radii)
    worst = 1
    for r in radii:
        centers = range(n) if n <= 64 else rng.choice(n, size=64, replace=False)
        for center in centers:
            members = np.nonzero(matrix[center] <= 2.0 * r)[0]
            if members.size <= 1:
                continue
            # Greedy r-net of the ball: repeatedly pick an uncovered point.
            uncovered = set(members.tolist())
            net_size = 0
            while uncovered:
                pick = next(iter(uncovered))
                net_size += 1
                covered = {
                    q for q in uncovered if matrix[pick, q] <= r
                }
                uncovered -= covered
            worst = max(worst, net_size)
    return worst


def is_growth_bounded(metric: MetricSpace, constant: float = 8.0) -> bool:
    """Convenience predicate: growth constant below the given threshold."""
    if constant < 1.0:
        raise ValueError("constant must be >= 1")
    if metric.n <= 2:
        return True
    return growth_constant(metric) <= constant


def doubling_dimension_estimate(metric: MetricSpace) -> float:
    """``log2`` of the doubling-constant estimate (dimension-like scale)."""
    return math.log2(max(1, doubling_constant_estimate(metric)))
