"""Ring (circle) metric.

A 1-D metric with wrap-around, useful as a growth-bounded test space and as
the substrate for Chord-like structured baselines.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.metrics.base import MetricSpace

__all__ = ["RingMetric"]


class RingMetric(MetricSpace):
    """Points on a circle of given circumference.

    ``d(i, j)`` is the shorter arc length between the two positions.

    Parameters
    ----------
    positions:
        Positions along the circle; taken modulo ``circumference``.
    circumference:
        Total length of the circle (must be positive).
    """

    def __init__(
        self, positions: Sequence[float], circumference: float = 1.0
    ) -> None:
        super().__init__()
        if circumference <= 0:
            raise ValueError(
                f"circumference must be > 0, got {circumference}"
            )
        array = np.asarray(positions, dtype=float) % circumference
        if array.ndim != 1:
            raise ValueError(
                f"positions must be a 1-D sequence, got shape {array.shape}"
            )
        array.setflags(write=False)
        self._positions = array
        self._circumference = float(circumference)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return int(self._positions.shape[0])

    @property
    def positions(self) -> np.ndarray:
        """Read-only positions along the circle, in ``[0, circumference)``."""
        return self._positions

    @property
    def circumference(self) -> float:
        """Total circle length."""
        return self._circumference

    def _compute_distance_matrix(self) -> np.ndarray:
        x = self._positions
        arc = np.abs(x[:, None] - x[None, :])
        matrix = np.minimum(arc, self._circumference - arc)
        np.fill_diagonal(matrix, 0.0)
        return matrix

    # ------------------------------------------------------------------
    @classmethod
    def evenly_spaced(cls, n: int, circumference: float = 1.0) -> "RingMetric":
        """``n`` points equally spaced around the circle."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        positions = np.arange(n, dtype=float) * (circumference / n)
        return cls(positions, circumference)

    @classmethod
    def random_uniform(
        cls, n: int, seed: Optional[int] = None, circumference: float = 1.0
    ) -> "RingMetric":
        """``n`` points uniform around the circle."""
        rng = np.random.default_rng(seed)
        return cls(rng.uniform(0.0, circumference, size=n), circumference)
