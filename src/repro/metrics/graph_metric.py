"""Metrics induced by weighted graphs.

Latency structure in real deployments is closer to shortest-path distances
over an underlay network than to clean Euclidean geometry.  A
:class:`GraphMetric` takes any strongly connected weighted digraph (e.g. a
random underlay, or a measured AS-level topology) and uses its symmetrized
shortest-path distances as the peer metric.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.digraph import WeightedDigraph
from repro.graphs.shortest_paths import all_pairs_distances
from repro.metrics.base import MetricSpace

__all__ = ["GraphMetric"]


class GraphMetric(MetricSpace):
    """Shortest-path metric of a weighted digraph.

    The digraph's all-pairs shortest-path matrix is symmetrized by taking
    ``min(d(u, v), d(v, u))`` (round-trip latency is governed by the faster
    direction in either case); the result satisfies the triangle inequality
    by construction.  The graph must connect every pair in at least one
    direction, otherwise distances would be infinite.
    """

    def __init__(self, graph: WeightedDigraph) -> None:
        super().__init__()
        distances = all_pairs_distances(graph)
        sym = np.minimum(distances, distances.T)
        if np.isinf(sym).any():
            raise ValueError(
                "underlay graph leaves some pairs mutually unreachable; "
                "a graph metric requires finite distances for all pairs"
            )
        np.fill_diagonal(sym, 0.0)
        sym.setflags(write=False)
        self._matrix = sym
        self._graph = graph.copy()

    @property
    def n(self) -> int:
        return int(self._matrix.shape[0])

    @property
    def underlay(self) -> WeightedDigraph:
        """A copy of the underlay graph that induced this metric."""
        return self._graph.copy()

    def _compute_distance_matrix(self) -> np.ndarray:
        return self._matrix
