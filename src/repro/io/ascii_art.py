"""ASCII rendering of line topologies (the paper's Figure 1, in text).

For 1-D instances the overlay is best understood as peers on a ruler with
link arcs above it; :func:`render_line_topology` draws exactly that, which
is how the examples and EXPERIMENTS.md visualize the exponential-line
equilibrium without any plotting dependency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.profile import StrategyProfile
from repro.metrics.line import LineMetric

__all__ = ["render_line_topology"]


def render_line_topology(
    metric: LineMetric,
    profile: StrategyProfile,
    width: int = 72,
    log_scale: bool = True,
) -> str:
    """Draw a 1-D instance as peers on a ruler with link arcs above.

    Peer ``i`` is drawn as its index on a horizontal axis placed by
    position (log-scaled by default — the paper's Figure 1 has
    exponentially growing gaps).  Each directed link ``i -> j`` becomes an
    arc row above the axis with ``>``/``<`` marking the head.

    Example output (n=4 exponential line)::

        0>>2       <--- arcs (one row per link)
        1<0 ...
        0   1   2      3    <--- the ruler
    """
    if metric.n != profile.n:
        raise ValueError(
            f"metric has {metric.n} peers, profile has {profile.n}"
        )
    n = metric.n
    if n == 0:
        return "(empty topology)"
    positions = np.asarray(metric.positions, dtype=float)
    if log_scale:
        shifted = positions - positions.min()
        scaled = np.log1p(shifted)
    else:
        scaled = positions - positions.min()
    span = scaled.max() if scaled.max() > 0 else 1.0
    columns = np.round(scaled / span * (width - 1)).astype(int)
    # Separate coincident columns so every peer is visible.
    order = np.argsort(positions, kind="stable")
    last_col = -1
    for peer in order:
        if columns[peer] <= last_col:
            columns[peer] = last_col + 1
        last_col = int(columns[peer])
    total_width = max(int(columns.max()) + 1, width)

    axis = [" "] * total_width
    for peer in range(n):
        label = str(peer)
        col = int(columns[peer])
        for offset, ch in enumerate(label):
            if col + offset < total_width:
                axis[col + offset] = ch

    arc_rows: List[str] = []
    for i, j in sorted(profile.edges()):
        row = [" "] * total_width
        a, b = int(columns[i]), int(columns[j])
        left, right = (a, b) if a <= b else (b, a)
        for col in range(left, right + 1):
            row[col] = "-"
        row[a] = "*"
        row[b if a != b else b] = ">" if b > a else "<"
        if a == b:
            row[a] = "*"
        arc_rows.append("".join(row).rstrip() + f"   ({i} -> {j})")

    lines = arc_rows + ["".join(axis).rstrip()]
    return "\n".join(lines)
