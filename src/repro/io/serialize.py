"""JSON round-tripping of metrics, profiles, and game instances.

Experiments persist their instances (notably the no-Nash witness and
sampled equilibria) so results are replayable artifacts.  The format is a
plain JSON object with a ``"kind"`` discriminator; numpy arrays are stored
as nested lists.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.core.game import TopologyGame
from repro.core.profile import StrategyProfile
from repro.metrics.base import MetricSpace
from repro.metrics.euclidean import EuclideanMetric
from repro.metrics.line import LineMetric
from repro.metrics.matrix import DistanceMatrixMetric, UniformMetric
from repro.metrics.ring import RingMetric

__all__ = [
    "metric_to_dict",
    "metric_from_dict",
    "profile_to_dict",
    "profile_from_dict",
    "game_to_dict",
    "game_from_dict",
    "save_json",
    "load_json",
]


def metric_to_dict(metric: MetricSpace) -> Dict[str, Any]:
    """Serialize a metric space to a JSON-compatible dict."""
    if isinstance(metric, LineMetric):
        return {
            "kind": "line",
            "positions": metric.positions.tolist(),
        }
    if isinstance(metric, EuclideanMetric):
        return {
            "kind": "euclidean",
            "points": metric.points.tolist(),
        }
    if isinstance(metric, RingMetric):
        return {
            "kind": "ring",
            "positions": metric.positions.tolist(),
            "circumference": metric.circumference,
        }
    if isinstance(metric, UniformMetric):
        return {"kind": "uniform", "n": metric.n}
    if isinstance(metric, DistanceMatrixMetric):
        return {
            "kind": "matrix",
            "matrix": metric.distance_matrix().tolist(),
        }
    # Fallback: any metric can be persisted through its distance matrix.
    return {
        "kind": "matrix",
        "matrix": metric.distance_matrix().tolist(),
    }


def metric_from_dict(data: Dict[str, Any]) -> MetricSpace:
    """Deserialize a metric space produced by :func:`metric_to_dict`."""
    kind = data.get("kind")
    if kind == "euclidean":
        return EuclideanMetric(np.asarray(data["points"], dtype=float))
    if kind == "line":
        return LineMetric(np.asarray(data["positions"], dtype=float))
    if kind == "ring":
        return RingMetric(
            np.asarray(data["positions"], dtype=float),
            circumference=float(data["circumference"]),
        )
    if kind == "uniform":
        return UniformMetric(int(data["n"]))
    if kind == "matrix":
        return DistanceMatrixMetric(np.asarray(data["matrix"], dtype=float))
    raise ValueError(f"unknown metric kind {kind!r}")


def profile_to_dict(profile: StrategyProfile) -> Dict[str, Any]:
    """Serialize a strategy profile (sorted adjacency lists)."""
    return {
        "kind": "profile",
        "strategies": [sorted(s) for s in profile.strategies()],
    }


def profile_from_dict(data: Dict[str, Any]) -> StrategyProfile:
    """Deserialize a profile produced by :func:`profile_to_dict`."""
    if data.get("kind") != "profile":
        raise ValueError(f"expected kind 'profile', got {data.get('kind')!r}")
    return StrategyProfile([frozenset(s) for s in data["strategies"]])


def game_to_dict(game: TopologyGame) -> Dict[str, Any]:
    """Serialize a game instance (metric + alpha)."""
    return {
        "kind": "game",
        "alpha": game.alpha,
        "metric": metric_to_dict(game.metric),
    }


def game_from_dict(data: Dict[str, Any]) -> TopologyGame:
    """Deserialize a game produced by :func:`game_to_dict`."""
    if data.get("kind") != "game":
        raise ValueError(f"expected kind 'game', got {data.get('kind')!r}")
    return TopologyGame(metric_from_dict(data["metric"]), float(data["alpha"]))


def save_json(obj: Dict[str, Any], path: Union[str, Path]) -> None:
    """Write a serialized object to disk (pretty-printed, stable order)."""
    path = Path(path)
    path.write_text(json.dumps(obj, indent=2, sort_keys=True) + "\n")


def load_json(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a serialized object back from disk."""
    return json.loads(Path(path).read_text())
