"""I/O: JSON persistence, DOT export, and ASCII topology rendering."""

from repro.io.ascii_art import render_line_topology
from repro.io.dot import graph_to_dot, profile_to_dot
from repro.io.serialize import (
    game_from_dict,
    game_to_dict,
    load_json,
    metric_from_dict,
    metric_to_dict,
    profile_from_dict,
    profile_to_dict,
    save_json,
)

__all__ = [
    "metric_to_dict",
    "metric_from_dict",
    "profile_to_dict",
    "profile_from_dict",
    "game_to_dict",
    "game_from_dict",
    "save_json",
    "load_json",
    "profile_to_dot",
    "graph_to_dot",
    "render_line_topology",
]
