"""Graphviz DOT export of overlay topologies.

Purely textual (no graphviz dependency): the output can be piped into
``dot -Tsvg`` or pasted into any online renderer to eyeball an overlay.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.core.profile import StrategyProfile
from repro.graphs.digraph import WeightedDigraph

__all__ = ["profile_to_dot", "graph_to_dot"]


def _quote(label: str) -> str:
    return '"' + label.replace('"', '\\"') + '"'


def graph_to_dot(
    graph: WeightedDigraph,
    node_labels: Optional[Mapping[int, str]] = None,
    weight_precision: int = 3,
    name: str = "overlay",
) -> str:
    """Render a weighted digraph as DOT source."""
    lines = [f"digraph {name} {{"]
    lines.append("  rankdir=LR;")
    for node in range(graph.num_nodes):
        label = (
            node_labels[node]
            if node_labels is not None and node in node_labels
            else str(node)
        )
        lines.append(f"  {node} [label={_quote(label)}];")
    for u, v, w in sorted(graph.edges()):
        lines.append(
            f"  {u} -> {v} [label={_quote(f'{w:.{weight_precision}g}')}];"
        )
    lines.append("}")
    return "\n".join(lines)


def profile_to_dot(
    profile: StrategyProfile,
    node_labels: Optional[Mapping[int, str]] = None,
    name: str = "overlay",
) -> str:
    """Render a strategy profile's link structure as DOT source.

    Weights are omitted (the profile alone carries no metric); use
    :func:`graph_to_dot` with ``TopologyGame.overlay`` for weighted output.
    """
    lines = [f"digraph {name} {{"]
    lines.append("  rankdir=LR;")
    for node in range(profile.n):
        label = (
            node_labels[node]
            if node_labels is not None and node in node_labels
            else str(node)
        )
        lines.append(f"  {node} [label={_quote(label)}];")
    for i, j in sorted(profile.edges()):
        lines.append(f"  {i} -> {j};")
    lines.append("}")
    return "\n".join(lines)
