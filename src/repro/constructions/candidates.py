"""Figure 3: the six equilibrium candidates and their improving deviations.

Section 5 of the paper narrows all potential Nash equilibria of the
Figure 2 instance down to six configurations, indexed by which top
clusters the bottom clusters link to (Lemma 5.2: ``Π1`` always links to
``Πa`` and optionally to one of ``Πb``/``Πc``; ``Π2`` links to exactly one
of ``Πb``/``Πc``):

====  ==============  =============
case  Π1's top links  Π2's top link
====  ==============  =============
1     a               b
2     a               c
3     a, b            b
4     a, b            c
5     a, c            b
6     a, c            c
====  ==============  =============

The paper then kills every candidate with a concrete improving deviation,
which is how the infinite best-response loop ``1 → 3 → 4 → 2 → 1`` arises.
This module rebuilds the candidates over the canonical witness of
:mod:`repro.constructions.no_nash` and machine-checks the whole case
analysis: :func:`deviation_table` computes the *exact* improving deviation
in each case, and :func:`run_paper_cycle` realizes the four-state cycle.

On the canonical witness the exact deviations match the paper's case
analysis move for move (the test suite pins them):

* case 1 — ``Π1`` adds the link to ``b``  (paper: "π1 can reduce its cost
  by adding a link ℓ1b"),
* case 2 — ``Π2`` switches ``c → b``,
* case 3 — ``Π2`` switches ``b → c``,
* case 4 — ``Π1`` drops the link to ``b``,
* case 5 — ``Π1`` replaces its ``c`` link with a ``b`` link,
* case 6 — ``Π1`` removes its ``c`` link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.best_response import BestResponseResult
from repro.core.game import TopologyGame
from repro.core.profile import StrategyProfile
from repro.constructions.no_nash import (
    CLUSTER_A,
    CLUSTER_B,
    CLUSTER_C,
    CLUSTER_NAMES,
    PI1,
    PI2,
    build_no_nash_instance,
)

__all__ = [
    "CANDIDATE_TOP_LINKS",
    "TOP_STRATEGIES",
    "PAPER_CYCLE",
    "candidate_profile",
    "all_candidate_profiles",
    "classify_candidate",
    "CandidateDeviation",
    "deviation_table",
    "CycleStep",
    "run_paper_cycle",
]

#: Case number -> (Π1's top links, Π2's top link set).
CANDIDATE_TOP_LINKS: Dict[int, Tuple[FrozenSet[int], FrozenSet[int]]] = {
    1: (frozenset({CLUSTER_A}), frozenset({CLUSTER_B})),
    2: (frozenset({CLUSTER_A}), frozenset({CLUSTER_C})),
    3: (frozenset({CLUSTER_A, CLUSTER_B}), frozenset({CLUSTER_B})),
    4: (frozenset({CLUSTER_A, CLUSTER_B}), frozenset({CLUSTER_C})),
    5: (frozenset({CLUSTER_A, CLUSTER_C}), frozenset({CLUSTER_B})),
    6: (frozenset({CLUSTER_A, CLUSTER_C}), frozenset({CLUSTER_C})),
}

#: The stable strategies of the top peers throughout the cycle: the top
#: row forms the chain ``a ↔ b ↔ c`` and each top peer keeps one link
#: down to a bottom peer (the structure Section 5's connectivity lemmas
#: force).
TOP_STRATEGIES: Dict[int, FrozenSet[int]] = {
    CLUSTER_A: frozenset({PI1, CLUSTER_B}),
    CLUSTER_B: frozenset({PI1, CLUSTER_A, CLUSTER_C}),
    CLUSTER_C: frozenset({PI2, CLUSTER_B}),
}

#: The paper's infinite best-response loop over the candidate cases.
PAPER_CYCLE = (1, 3, 4, 2)


def candidate_profile(case: int) -> StrategyProfile:
    """The strategy profile of Figure 3's candidate ``case`` (1-6)."""
    if case not in CANDIDATE_TOP_LINKS:
        raise ValueError(f"case must be 1..6, got {case}")
    pi1_top, pi2_top = CANDIDATE_TOP_LINKS[case]
    return StrategyProfile(
        [
            frozenset({PI2}) | pi1_top,
            frozenset({PI1}) | pi2_top,
            TOP_STRATEGIES[CLUSTER_A],
            TOP_STRATEGIES[CLUSTER_B],
            TOP_STRATEGIES[CLUSTER_C],
        ]
    )


def all_candidate_profiles() -> Dict[int, StrategyProfile]:
    """All six candidate profiles keyed by case number."""
    return {case: candidate_profile(case) for case in range(1, 7)}


def classify_candidate(profile: StrategyProfile) -> Optional[int]:
    """Case number of ``profile`` if it is one of the six candidates."""
    for case in range(1, 7):
        if profile == candidate_profile(case):
            return case
    return None


@dataclass(frozen=True)
class CandidateDeviation:
    """The machine-checked improving deviation killing one candidate.

    Attributes
    ----------
    case:
        Figure 3 case number (1-6).
    deviator:
        The peer with the largest-gain improving deviation.
    deviator_name:
        Its cluster name (``"Pi1"``, ``"Pi2"``, ``"a"``, ``"b"``, ``"c"``).
    old_strategy / new_strategy:
        The deviator's link sets before and after (sorted tuples).
    old_cost / new_cost / gain:
        The deviator's individual costs.
    next_case:
        Candidate reached when the deviation is applied, or None when the
        resulting profile leaves the candidate family.
    """

    case: int
    deviator: int
    deviator_name: str
    old_strategy: Tuple[int, ...]
    new_strategy: Tuple[int, ...]
    old_cost: float
    new_cost: float
    gain: float
    next_case: Optional[int]


def _best_deviation(
    game: TopologyGame, profile: StrategyProfile
) -> Tuple[int, BestResponseResult]:
    """The (peer, response) pair with the largest improvement."""
    best: Optional[Tuple[int, BestResponseResult]] = None
    for peer in range(game.n):
        response = game.best_response(profile, peer)
        if response.improved and (best is None or response.gain > best[1].gain):
            best = (peer, response)
    if best is None:
        raise RuntimeError(
            "candidate admits no improving deviation — it is a Nash "
            "equilibrium, contradicting the no-Nash certificate"
        )
    return best


def deviation_table(
    game: Optional[TopologyGame] = None,
) -> List[CandidateDeviation]:
    """Machine-checked version of the paper's six-case analysis.

    For every Figure 3 candidate, compute the exact largest-gain improving
    deviation (cases are guaranteed to have one by the exhaustive no-Nash
    certificate) and report where it leads.
    """
    if game is None:
        game = build_no_nash_instance()
    rows: List[CandidateDeviation] = []
    for case in range(1, 7):
        profile = candidate_profile(case)
        peer, response = _best_deviation(game, profile)
        successor = profile.with_strategy(peer, response.strategy)
        rows.append(
            CandidateDeviation(
                case=case,
                deviator=peer,
                deviator_name=CLUSTER_NAMES[peer],
                old_strategy=tuple(sorted(profile.strategy(peer))),
                new_strategy=tuple(sorted(response.strategy)),
                old_cost=response.current_cost,
                new_cost=response.cost,
                gain=response.gain,
                next_case=classify_candidate(successor),
            )
        )
    return rows


@dataclass(frozen=True)
class CycleStep:
    """One hop of the realized best-response cycle."""

    case: int
    deviator: int
    deviator_name: str
    gain: float
    next_case: int


def run_paper_cycle(
    game: Optional[TopologyGame] = None,
    start_case: int = 1,
    max_steps: int = 32,
) -> List[CycleStep]:
    """Follow largest-gain deviations until the candidate cycle closes.

    Starting from a Figure 3 candidate, repeatedly apply the largest-gain
    improving deviation; on the canonical witness the trajectory stays in
    the candidate family and closes the paper's loop ``1 → 3 → 4 → 2 → 1``.
    Returns the steps of one full period (the list ends back at the
    starting case).  Raises ``RuntimeError`` if the trajectory leaves the
    candidate family or fails to close within ``max_steps``.
    """
    if game is None:
        game = build_no_nash_instance()
    steps: List[CycleStep] = []
    case = start_case
    visited = {case}
    for _ in range(max_steps):
        profile = candidate_profile(case)
        peer, response = _best_deviation(game, profile)
        successor = profile.with_strategy(peer, response.strategy)
        next_case = classify_candidate(successor)
        if next_case is None:
            raise RuntimeError(
                f"deviation from case {case} left the candidate family"
            )
        steps.append(
            CycleStep(
                case=case,
                deviator=peer,
                deviator_name=CLUSTER_NAMES[peer],
                gain=response.gain,
                next_case=next_case,
            )
        )
        case = next_case
        if case == start_case:
            return steps
        if case in visited and case != start_case:
            raise RuntimeError(
                f"trajectory entered a sub-cycle not containing the start "
                f"case: {[s.case for s in steps]}"
            )
        visited.add(case)
    raise RuntimeError(f"cycle did not close within {max_steps} steps")
