"""The collaborative baseline on the line: the paper's topology G~.

If every peer connects to its nearest neighbors on both sides, the overlay
is a bidirectional chain with ``2(n-1)`` links and stretch exactly 1 for
every pair (on a line, the chain path *is* the direct segment), so::

    C(G~) = alpha * 2(n-1) + n(n-1)  in  O(alpha n + n^2)

This upper-bounds the optimal social cost and is the denominator of the
Theorem 4.4 Price-of-Anarchy lower bound.
"""

from __future__ import annotations

import numpy as np

from repro.core.profile import StrategyProfile
from repro.metrics.line import LineMetric

__all__ = ["optimal_line_profile", "optimal_line_cost_formula"]


def optimal_line_profile(metric: LineMetric) -> StrategyProfile:
    """Bidirectional chain over the sorted positions of a line metric."""
    order = metric.sorted_order()
    n = metric.n
    strategies = [set() for _ in range(n)]
    for a, b in zip(order, order[1:]):
        strategies[int(a)].add(int(b))
        strategies[int(b)].add(int(a))
    return StrategyProfile(strategies)


def optimal_line_cost_formula(alpha: float, n: int) -> float:
    """Closed form ``alpha * 2(n-1) + n(n-1)`` of the chain's social cost.

    All stretches are exactly 1 on a line (consecutive hops add up to the
    direct distance), so the stretch part is the number of ordered pairs.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return alpha * 2.0 * (n - 1) + float(n) * (n - 1)
