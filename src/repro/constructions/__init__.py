"""The paper's explicit constructions, rebuilt as executable artifacts.

* :mod:`~repro.constructions.line_lower_bound` — Figure 1: the
  exponential-line Nash equilibrium whose social cost is ``Θ(α n²)``
  (the Theorem 4.4 Price-of-Anarchy lower bound).
* :mod:`~repro.constructions.line_optimal` — the collaborative chain
  baseline ``G~`` with cost ``O(α n + n²)``.
* :mod:`~repro.constructions.no_nash` — Theorem 5.1: a 2-D Euclidean
  witness with **no** pure Nash equilibrium, certified by exhausting all
  ``2^20`` profiles, plus the ``I_k`` cluster-instance builder and the
  search tool that found the witness.
* :mod:`~repro.constructions.candidates` — Figure 3: the six equilibrium
  candidates, their machine-checked improving deviations, and the realized
  best-response cycle ``1 → 3 → 4 → 2 → 1``.
"""

from repro.constructions.candidates import (
    CANDIDATE_TOP_LINKS,
    PAPER_CYCLE,
    CandidateDeviation,
    CycleStep,
    all_candidate_profiles,
    candidate_profile,
    classify_candidate,
    deviation_table,
    run_paper_cycle,
)
from repro.constructions.line_lower_bound import (
    MIN_ALPHA,
    LineLowerBoundInstance,
    build_lower_bound_instance,
    lower_bound_metric,
    lower_bound_positions,
    lower_bound_profile,
)
from repro.constructions.line_optimal import (
    optimal_line_cost_formula,
    optimal_line_profile,
)
from repro.constructions.no_nash import (
    CERTIFIED_ALPHAS,
    KNOWN_WITNESSES,
    WITNESS_ALPHA,
    WITNESS_POINTS,
    ClusterInstance,
    NoNashWitness,
    build_cluster_instance,
    build_no_nash_instance,
    certify_no_nash,
    search_no_nash_witness,
    witness_metric,
)

__all__ = [
    "MIN_ALPHA",
    "LineLowerBoundInstance",
    "build_lower_bound_instance",
    "lower_bound_metric",
    "lower_bound_positions",
    "lower_bound_profile",
    "optimal_line_profile",
    "optimal_line_cost_formula",
    "WITNESS_POINTS",
    "WITNESS_ALPHA",
    "CERTIFIED_ALPHAS",
    "KNOWN_WITNESSES",
    "witness_metric",
    "build_no_nash_instance",
    "certify_no_nash",
    "ClusterInstance",
    "build_cluster_instance",
    "NoNashWitness",
    "search_no_nash_witness",
    "CANDIDATE_TOP_LINKS",
    "PAPER_CYCLE",
    "candidate_profile",
    "all_candidate_profiles",
    "classify_candidate",
    "CandidateDeviation",
    "deviation_table",
    "CycleStep",
    "run_paper_cycle",
]
