"""Theorem 5.1: a 2-D Euclidean instance with **no** pure Nash equilibrium.

The paper's Figure 2 instance ``I_k`` groups ``n`` peers into five clusters
(bottom clusters ``Π1, Π2``, top clusters ``Πa, Πb, Πc``) of ``k`` peers
each and sets ``α = 0.6 k``; its Section 5 lemmas narrow all equilibrium
candidates down to the six configurations of Figure 3 and then exhibit an
improving deviation in each, so best-response dynamics loops
``1 → 3 → 4 → 2 → 1`` forever.

The exact 2-D coordinates of Figure 2 are not recoverable from the paper's
text (the figure only labels a subset of the distances), so this module
ships a coordinate set **reconstructed by numerical search** (see
:func:`search_no_nash_witness`, the tool that found it) with the same
anatomy — two bottom peers at distance 1, three top peers, ``α = 0.6`` —
and a *stronger* certificate than the paper's hand proof:

* :func:`certify_no_nash` sweeps **all** ``2^20`` strategy profiles of the
  witness and confirms that not a single one is a pure Nash equilibrium
  (:mod:`repro.core.exhaustive`).
* The six Figure 3 candidate configurations, rebuilt on the witness in
  :mod:`repro.constructions.candidates`, admit exactly the improving
  deviations the paper describes, and best-response dynamics realizes the
  paper's four-state cycle ``1 → 3 → 4 → 2``.

For the cluster-level anatomy experiments the module also builds ``I_k``
style instances with ``k`` peers per cluster
(:func:`build_cluster_instance`); those are used qualitatively (dynamics,
structure) since exhaustive certification is only feasible at ``k = 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exhaustive import (
    MAX_EXHAUSTIVE_PEERS,
    ExhaustiveResult,
    encoded_best_response_dynamics,
    exhaustive_equilibria,
)
from repro.core.game import TopologyGame
from repro.metrics.euclidean import EuclideanMetric

__all__ = [
    "WITNESS_POINTS",
    "WITNESS_ALPHA",
    "CERTIFIED_ALPHAS",
    "KNOWN_WITNESSES",
    "PI1",
    "PI2",
    "CLUSTER_A",
    "CLUSTER_B",
    "CLUSTER_C",
    "CLUSTER_NAMES",
    "witness_metric",
    "build_no_nash_instance",
    "certify_no_nash",
    "ClusterInstance",
    "build_cluster_instance",
    "NoNashWitness",
    "search_no_nash_witness",
]

#: Peer indices of the witness, named after the paper's five clusters.
PI1, PI2, CLUSTER_A, CLUSTER_B, CLUSTER_C = range(5)

#: Human-readable cluster names indexed by peer id.
CLUSTER_NAMES = ("Pi1", "Pi2", "a", "b", "c")

#: The canonical witness coordinates (one peer per cluster): ``Π1`` and
#: ``Π2`` on the bottom at distance 1, the three top clusters above —
#: the anatomy of the paper's Figure 2 with ``k = 1``.
WITNESS_POINTS = np.array(
    [
        [0.00, 0.00],   # Pi1
        [1.00, 0.00],   # Pi2
        [-0.83, 1.77],  # a
        [0.31, 2.07],   # b
        [1.96, 2.20],   # c
    ]
)

#: The paper's trade-off parameter for ``k = 1`` clusters: ``α = 0.6 k``.
WITNESS_ALPHA = 0.6

#: Values of ``alpha`` at which the witness is certified to have no pure
#: Nash equilibrium (each re-checked by the exhaustive sweep in the test
#: suite).  Outside roughly ``[0.59, 0.66]`` equilibria reappear.
CERTIFIED_ALPHAS = (0.60, 0.62, 0.65)

#: Additional certified witnesses at other magnitudes of ``alpha``
#: (Theorem 5.1: "regardless of the magnitude of alpha") found by
#: :func:`search_no_nash_witness` and re-verified exhaustively by the test
#: suite.  Maps ``alpha`` to 5x2 coordinate lists.
KNOWN_WITNESSES = {
    0.15: (
        (0.765, 0.233),
        (0.695, 1.759),
        (0.851, 1.780),
        (0.535, 0.289),
        (1.067, 0.085),
    ),
    0.30: (
        (1.742, 0.526),
        (1.587, 0.309),
        (0.418, 1.512),
        (0.829, 1.732),
        (1.686, 1.530),
    ),
    0.60: tuple(tuple(row) for row in WITNESS_POINTS.tolist()),
    1.20: (
        (0.0, 0.0),
        (1.0, 0.0),
        (0.453, 1.032),
        (1.736, 0.986),
        (1.023, 2.092),
    ),
}


def witness_metric() -> EuclideanMetric:
    """The 2-D Euclidean metric of the canonical no-Nash witness."""
    return EuclideanMetric(WITNESS_POINTS.copy())


def build_no_nash_instance(alpha: float = WITNESS_ALPHA) -> TopologyGame:
    """The canonical Theorem 5.1 witness game.

    With the default ``alpha`` (and every value in
    :data:`CERTIFIED_ALPHAS`) this game has **no** pure Nash equilibrium;
    :func:`certify_no_nash` proves it by exhaustion.
    """
    return TopologyGame(witness_metric(), alpha)


def certify_no_nash(
    game: Optional[TopologyGame] = None, alpha: Optional[float] = None
) -> ExhaustiveResult:
    """Exhaustively certify the (non-)existence of pure Nash equilibria.

    Sweeps all ``2^(n(n-1))`` profiles of ``game`` (default: the canonical
    witness at ``alpha``).  For the canonical witness the result has
    ``has_equilibrium == False`` — the machine-checked statement of
    Theorem 5.1.
    """
    if game is None:
        game = build_no_nash_instance(
            WITNESS_ALPHA if alpha is None else alpha
        )
    elif alpha is not None:
        game = game.with_alpha(alpha)
    return exhaustive_equilibria(game.distance_matrix, game.alpha)


# ----------------------------------------------------------------------
# Cluster-level instances (the I_k anatomy)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterInstance:
    """An ``I_k``-style five-cluster instance.

    Attributes
    ----------
    game:
        The topology game (``alpha = 0.6 k`` unless overridden).
    clusters:
        Five tuples of peer indices, ordered ``(Π1, Π2, Πa, Πb, Πc)``.
    k:
        Peers per cluster (``n = 5k``).
    epsilon:
        Cluster diameter (the paper requires it tiny: ``ε/n``).
    """

    game: TopologyGame
    clusters: Tuple[Tuple[int, ...], ...]
    k: int
    epsilon: float

    @property
    def n(self) -> int:
        return self.game.n

    def cluster_of(self, peer: int) -> int:
        """Index (0-4) of the cluster containing ``peer``."""
        for index, members in enumerate(self.clusters):
            if peer in members:
                return index
        raise ValueError(f"peer {peer} not in any cluster")

    def cluster_name_of(self, peer: int) -> str:
        """Paper-style name of the peer's cluster."""
        return CLUSTER_NAMES[self.cluster_of(peer)]


def build_cluster_instance(
    k: int,
    epsilon: float = 0.01,
    alpha: Optional[float] = None,
    centers: Optional[np.ndarray] = None,
) -> ClusterInstance:
    """Build a five-cluster instance with ``k`` peers per cluster.

    Each cluster places its ``k`` peers equidistantly on a short horizontal
    segment of length ``epsilon`` centered on the cluster center (the
    paper: "within a cluster, peers are located equidistantly on a line,
    and each cluster's diameter is ``ε/n``").  ``alpha`` defaults to the
    paper's ``0.6 k``.

    Note that only the ``k = 1`` instance at the canonical centers is
    exhaustively certified to lack equilibria; larger ``k`` instances are
    used for qualitative cluster-anatomy experiments.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if epsilon < 0:
        raise ValueError(f"epsilon must be >= 0, got {epsilon}")
    if centers is None:
        centers = WITNESS_POINTS
    centers = np.asarray(centers, dtype=float)
    if centers.shape != (5, 2):
        raise ValueError(
            f"centers must have shape (5, 2), got {centers.shape}"
        )
    points: List[List[float]] = []
    clusters: List[Tuple[int, ...]] = []
    for cx, cy in centers:
        members = []
        for slot in range(k):
            if k == 1:
                offset = 0.0
            else:
                offset = (slot / (k - 1) - 0.5) * epsilon
            members.append(len(points))
            points.append([cx + offset, cy])
        clusters.append(tuple(members))
    metric = EuclideanMetric(np.array(points))
    game = TopologyGame(metric, 0.6 * k if alpha is None else alpha)
    return ClusterInstance(
        game=game, clusters=tuple(clusters), k=k, epsilon=epsilon
    )


# ----------------------------------------------------------------------
# Witness search (the tool that found WITNESS_POINTS)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NoNashWitness:
    """A certified instance without any pure Nash equilibrium.

    ``result`` is the exhaustive sweep proving ``num_equilibria == 0``.
    """

    points: np.ndarray
    alpha: float
    result: ExhaustiveResult


def _pairwise_distances(points: np.ndarray) -> np.ndarray:
    diff = points[:, None, :] - points[None, :, :]
    return np.sqrt((diff ** 2).sum(axis=2))


def _sample_layout(rng: np.random.Generator) -> np.ndarray:
    """Sample a 5-point 2-D layout (paper-like or random)."""
    kind = int(rng.integers(0, 3))
    if kind == 0:
        return np.array(
            [
                [0.0, 0.0],
                [1.0, 0.0],
                [rng.uniform(-1.0, 0.8), rng.uniform(0.6, 2.4)],
                [rng.uniform(0.0, 1.8), rng.uniform(0.6, 2.4)],
                [rng.uniform(0.8, 2.6), rng.uniform(0.6, 2.4)],
            ]
        )
    if kind == 1:
        return rng.uniform(0.0, 1.0, size=(5, 2)) * rng.uniform(1.0, 3.0)
    base = np.array(
        [[0, 0], [1, 0], [0.1, 1.1], [0.9, 1.2], [1.9, 1.0]], dtype=float
    )
    return base + rng.normal(0.0, 0.35, size=(5, 2))


def search_no_nash_witness(
    alpha: Optional[float] = None,
    max_configs: int = 20_000,
    max_hits: int = 1,
    seed: Optional[int] = None,
    filter_starts: int = 4,
) -> List[NoNashWitness]:
    """Search for 5-peer 2-D Euclidean instances without pure equilibria.

    This is the (deterministic, seeded) tool that found
    :data:`WITNESS_POINTS`.  It samples layouts, filters out any
    configuration where exact best-response dynamics converges from some
    start (a convergent run certifies an equilibrium exists), and runs the
    full exhaustive sweep on the survivors.

    Parameters
    ----------
    alpha:
        Fixed trade-off parameter, or None to sample it per configuration
        (log-uniform over ``[0.08, 4]`` mixed with the paper's 0.6).
    max_configs:
        Sampling budget.
    max_hits:
        Stop after this many certified witnesses.
    seed:
        RNG seed (the search is deterministic given a seed).
    filter_starts:
        Number of random starting profiles (plus empty and complete) that
        must all cycle before paying for the exhaustive sweep.

    Returns
    -------
    The certified witnesses found (possibly fewer than ``max_hits``).
    """
    rng = np.random.default_rng(seed)
    full_mask = (1 << 20) - 1
    witnesses: List[NoNashWitness] = []
    for _ in range(max_configs):
        points = _sample_layout(rng)
        dmat = _pairwise_distances(points)
        positive = dmat[dmat > 0]
        if positive.size == 0 or positive.min() < 1e-6:
            continue
        if alpha is None:
            if rng.random() < 0.4:
                config_alpha = 0.6
            else:
                config_alpha = float(
                    np.exp(rng.uniform(np.log(0.08), np.log(4.0)))
                )
        else:
            config_alpha = alpha
        # Cheap filter: one run from empty must not converge.
        first = encoded_best_response_dynamics(dmat, config_alpha, 0)
        if first.converged:
            continue
        starts = [0, full_mask] + [
            int(rng.integers(0, full_mask + 1)) for _ in range(filter_starts)
        ]
        orders: List[Sequence[int]] = [list(range(5)), list(range(4, -1, -1))]
        if any(
            encoded_best_response_dynamics(
                dmat, config_alpha, start, order
            ).converged
            for start in starts
            for order in orders
        ):
            continue
        result = exhaustive_equilibria(dmat, config_alpha)
        if not result.has_equilibrium:
            witnesses.append(
                NoNashWitness(
                    points=points, alpha=config_alpha, result=result
                )
            )
            if len(witnesses) >= max_hits:
                break
    return witnesses
