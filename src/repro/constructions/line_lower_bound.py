"""The paper's Figure 1: a Nash equilibrium with social cost Theta(alpha n^2).

Peers sit on the 1-D Euclidean line with exponentially growing spacing:
peer ``i`` (1-indexed as in the paper) is at position ``alpha^(i-1) / 2``
when ``i`` is odd and at ``alpha^(i-1)`` when ``i`` is even.  Every peer
links to its nearest left neighbor; odd peers additionally link to the
second-nearest peer on their right.

Lemma 4.2 proves this profile is a pure Nash equilibrium for
``alpha >= 3.4``; Lemma 4.3 computes its social cost ``Theta(alpha n^2)``;
together with the optimal line topology (``O(alpha n + n^2)``, see
:mod:`repro.constructions.line_optimal`) this realizes the
``Theta(min(alpha, n))`` Price-of-Anarchy lower bound of Theorem 4.4 —
already in the simplest possible metric space.

In this module peers are 0-indexed: peer ``k`` corresponds to the paper's
peer ``i = k + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.game import TopologyGame
from repro.core.profile import StrategyProfile
from repro.metrics.line import LineMetric

__all__ = [
    "MIN_ALPHA",
    "lower_bound_positions",
    "lower_bound_metric",
    "lower_bound_profile",
    "LineLowerBoundInstance",
    "build_lower_bound_instance",
]

#: Threshold above which Lemma 4.2 guarantees the profile is a Nash
#: equilibrium.
MIN_ALPHA = 3.4


def lower_bound_positions(n: int, alpha: float) -> np.ndarray:
    """Positions of the ``n`` peers on the line (0-indexed).

    The paper's peer ``i`` (1-indexed) sits at ``alpha^(i-1)/2`` for odd
    ``i`` and ``alpha^(i-1)`` for even ``i``; positions grow exponentially
    to the right, so ``n`` is limited by float range for large ``alpha``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if alpha <= 1.0:
        raise ValueError(
            f"the construction needs alpha > 1 for increasing positions, "
            f"got {alpha}"
        )
    paper_index = np.arange(1, n + 1)
    powers = np.power(float(alpha), paper_index - 1)
    odd = paper_index % 2 == 1
    return np.where(odd, powers / 2.0, powers)


def lower_bound_metric(n: int, alpha: float) -> LineMetric:
    """The 1-D metric space of Figure 1."""
    return LineMetric(lower_bound_positions(n, alpha))


def lower_bound_profile(n: int) -> StrategyProfile:
    """The link strategy of Figure 1 (0-indexed peers).

    Peer ``k > 0`` links to ``k - 1`` (nearest neighbor on the left).
    Peers that are *odd in the paper's 1-indexing* (even ``k``) also link
    to ``k + 2`` (second-nearest on their right): the odd peers form a
    rightward chain and every even peer hangs off it via the left-links.

    Boundary: the paper draws an unbounded segment, where the rightmost
    paper-odd peer always has a second-nearest right neighbor.  For even
    ``n`` the last paper-odd peer's ``k + 2`` does not exist and the final
    even peer would be unreachable, so that one peer links to ``k + 1``
    instead (its nearest right neighbor).  For odd ``n`` the profile is
    exactly the paper's.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    strategies: List[set] = [set() for _ in range(n)]
    for k in range(1, n):
        strategies[k].add(k - 1)
    for k in range(0, n, 2):  # paper-odd peers
        if k + 2 < n:
            strategies[k].add(k + 2)
        elif k + 1 < n:
            strategies[k].add(k + 1)
    return StrategyProfile(strategies)


@dataclass(frozen=True)
class LineLowerBoundInstance:
    """A fully assembled Figure 1 instance.

    Attributes
    ----------
    game:
        The topology game on the exponential line.
    profile:
        The equilibrium candidate profile of Figure 1.
    """

    game: TopologyGame
    profile: StrategyProfile

    @property
    def n(self) -> int:
        return self.game.n

    @property
    def alpha(self) -> float:
        return self.game.alpha


def build_lower_bound_instance(n: int, alpha: float) -> LineLowerBoundInstance:
    """Build the Figure 1 game and profile for given ``n`` and ``alpha``.

    ``alpha`` below :data:`MIN_ALPHA` is allowed (experiment E7 probes the
    threshold where the Nash property breaks) but the Lemma 4.2 guarantee
    only applies from 3.4 upwards.
    """
    metric = lower_bound_metric(n, alpha)
    game = TopologyGame(metric, alpha)
    return LineLowerBoundInstance(game=game, profile=lower_bound_profile(n))
