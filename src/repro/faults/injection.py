"""Fault injection at the shard-transport seam.

:class:`FaultyTransport` wraps any
:class:`~repro.core.shard_workers.ShardTransport` and consults a
:class:`~repro.faults.plan.FaultPlan` once per request (at ``send``
time, keyed by a per-site operation counter), so the schedule is a pure
function of the plan seed and the request sequence:

* ``delay`` — hold the request, then pass it through unchanged.
* ``drop`` — never put it on the wire; tear the channel down and raise
  the *between-requests* death the pool's recovery path understands.
* ``corrupt`` — let the request run, collect the real reply, then
  discard it and report a *mid-request* death (the reply bytes cannot
  be trusted, exactly as if the frame had been damaged in flight).
* ``kill`` — kill the worker behind the transport for real (SIGKILL /
  abrupt socket close), so recovery exercises the genuine EOF and
  reconnect machinery, not a simulation of it.

:class:`FaultyTransportFactory` wraps a transport factory (the
``transport_factory`` seam of
:class:`~repro.core.shard_workers.ShardWorkerPool`), naming each
produced transport's site ``"shard-<lo>-<hi>"`` and keeping one shared
:class:`InjectionLog` for assertions.  Per-site operation counters live
in the *factory*, so a respawned shard's replacement transport resumes
its site's schedule instead of replaying the ops (and faults) the dead
one already consumed.  Under the null plan both wrappers are
pass-throughs: same requests, same replies, same bytes.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, Optional, Tuple

from repro.core.shard_workers import ShardTransport, ShardWorkerError
from repro.faults.plan import FaultPlan

__all__ = ["FaultyTransport", "FaultyTransportFactory", "InjectionLog"]

#: Marker prefixed to every injected failure, so tests (and operators)
#: can tell an injected fault from an organic one at a glance.
INJECTED = "[fault-injection]"


class InjectionLog:
    """Thread-safe counters of what a plan actually injected."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}

    def count(self, action: str, site: str) -> None:
        with self._lock:
            self._counts[action] = self._counts.get(action, 0) + 1
            key = f"{action}@{site}"
            self._counts[key] = self._counts.get(key, 0) + 1

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def total(self, action: Optional[str] = None) -> int:
        with self._lock:
            if action is not None:
                return self._counts.get(action, 0)
            return sum(
                count
                for key, count in self._counts.items()
                if "@" not in key
            )


class FaultyTransport(ShardTransport):
    """A shard transport with a fault plan between caller and wire."""

    def __init__(
        self,
        inner: ShardTransport,
        plan: FaultPlan,
        site: str,
        log: Optional[InjectionLog] = None,
        ops: Optional["itertools.count"] = None,
    ) -> None:
        self._inner = inner
        self._plan = plan
        self._site = site
        self._log = log if log is not None else InjectionLog()
        #: The site's op sequence; shared (via the factory) across the
        #: transports that successively serve this site.
        self._ops = ops if ops is not None else itertools.count()
        #: Set when an injected send-side fault consumed the request:
        #: the far side never saw it, so there is no reply to collect.
        self._pending_fault: Optional[str] = None

    @property
    def name(self) -> str:
        return getattr(self._inner, "name", self._site)

    @property
    def site(self) -> str:
        return self._site

    @property
    def log(self) -> InjectionLog:
        return self._log

    # ------------------------------------------------------------------
    def _kill_inner(self) -> None:
        """Kill the worker behind the inner transport for real."""
        kill = getattr(self._inner, "kill", None)
        if callable(kill):
            kill()
        else:  # pragma: no cover - every shipped transport has kill()
            self._inner.close()

    def send(self, message: Tuple) -> None:
        op = next(self._ops)
        action = self._plan.action(self._site, op)
        if action == "delay":
            self._log.count("delay", self._site)
            if self._plan.delay_s > 0:
                time.sleep(self._plan.delay_s)
            action = None
        if action is None:
            self._inner.send(message)
            return
        self._log.count(action, self._site)
        if action == "drop":
            # The request never reaches the wire: semantically the
            # worker died *between* requests (its state never saw this
            # message), which is what makes a post-respawn retry safe.
            self._pending_fault = "drop"
            self._inner.close()
            raise ShardWorkerError(
                f"{INJECTED} dropped request to shard worker {self.name} "
                f"(op {op}): worker died between requests"
            )
        if action == "kill":
            self._pending_fault = "kill"
            self._kill_inner()
            raise ShardWorkerError(
                f"{INJECTED} killed shard worker {self.name} (op {op}): "
                f"worker died between requests"
            )
        # "corrupt": the request runs, but the reply will be ruined.
        self._pending_fault = "corrupt"
        self._inner.send(message)

    def recv(self):
        fault, self._pending_fault = self._pending_fault, None
        if fault == "corrupt":
            # Drain the real reply to keep the stream ordered, then
            # refuse to deliver it — and tear the channel down, because
            # a transport that returned garbage cannot be trusted for
            # the next strictly-ordered exchange either.
            try:
                self._inner.recv()
            except ShardWorkerError:
                pass
            self._inner.close()
            raise ShardWorkerError(
                f"{INJECTED} corrupted reply from shard worker "
                f"{self.name}: worker died mid-request"
            )
        if fault is not None:  # pragma: no cover - send already raised
            raise ShardWorkerError(
                f"{INJECTED} no reply pending from {self.name} after "
                f"injected {fault}"
            )
        return self._inner.recv()

    def request(self, message: Tuple):
        self.send(message)
        return self.recv()

    @property
    def alive(self) -> bool:
        return self._inner.alive

    def kill(self) -> None:
        """Expose the inner kill for chaos drills that bypass the plan."""
        self._kill_inner()

    def close(self) -> None:
        self._inner.close()


class FaultyTransportFactory:
    """Wrap a transport factory so every produced transport injects.

    Drop-in for the ``transport_factory`` seam of
    :class:`~repro.core.shard_workers.ShardWorkerPool`; under the null
    plan every produced transport is still wrapped but never injects,
    and the pool's behavior is bitwise identical to the bare factory.
    """

    def __init__(
        self,
        inner,
        plan: FaultPlan,
        log: Optional[InjectionLog] = None,
    ) -> None:
        self._inner = inner
        self._plan = plan
        self.log = log if log is not None else InjectionLog()
        self._site_ops: Dict[str, "itertools.count"] = {}
        self._lock = threading.Lock()

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    def __call__(
        self,
        lo: int,
        hi: int,
        dmat,
        backend: str = "auto",
        dynamic: bool = True,
    ) -> FaultyTransport:
        transport = self._inner(lo, hi, dmat, backend, dynamic)
        site = f"shard-{lo}-{hi}"
        with self._lock:
            ops = self._site_ops.setdefault(site, itertools.count())
        return FaultyTransport(transport, self._plan, site, self.log, ops)

    def close(self) -> None:
        """Delegate placement-level teardown to the wrapped factory."""
        close = getattr(self._inner, "close", None)
        if callable(close) and not isinstance(self._inner, type):
            close()
