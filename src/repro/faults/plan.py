"""The fault schedule: seeded, deterministic, replayable.

A :class:`FaultPlan` decides — for every *site* (a named injection
point: one shard transport, the service queue) and every operation that
site performs — whether to inject a fault and which one.  Decisions are
a pure function of ``(plan seed, site name, per-site op index)`` via a
SHA-256 draw, so two runs with the same plan and the same operation
sequence inject byte-identical fault schedules: recovery times are
measurable quantities, not race outcomes.  (``random.Random`` is not
used because string hashing is per-process randomized.)

Actions a site may be told to take:

``"delay"``
    Hold the operation for :attr:`FaultPlan.delay_s` seconds first.
``"drop"``
    Lose the request before it reaches the wire (the far side never
    sees it; to the caller the worker died *between* requests).
``"corrupt"``
    Deliver the reply but ruin it (to the caller the worker died
    *mid-request* — the reply bytes cannot be trusted).
``"kill"``
    Kill the worker behind the transport for real, mid-run.

The **null plan** (every rate zero, no scheduled kills) is the honest
baseline: wrapping a fabric in it must be bitwise-neutral, which the
fault tests pin.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

__all__ = ["FaultPlan", "NULL_PLAN", "FAULT_ACTIONS"]

#: Everything :meth:`FaultPlan.action` may return (besides ``None``).
FAULT_ACTIONS = ("delay", "drop", "corrupt", "kill")


def _draw(seed: int, site: str, op: int) -> float:
    """Uniform [0, 1) from (seed, site, op) — stable across processes."""
    blob = f"{seed}:{site}:{op}".encode("utf-8")
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected faults.

    Parameters
    ----------
    seed:
        Schedule seed; same seed + same op sequence = same faults.
    drop_rate / corrupt_rate / delay_rate:
        Per-operation probabilities (evaluated independently, in the
        order kill > drop > corrupt > delay — at most one action fires
        per operation).
    delay_s:
        How long a ``"delay"`` action holds the operation.
    kill_ops:
        ``{site: (op_index, ...)}`` — operations at which the worker
        behind ``site`` is killed outright.  Sites are named
        ``"shard-<lo>-<hi>"`` by the transport wrapper and
        ``"service-queue"`` by the front-end.
    sites:
        When given, only these sites inject; every other site sees the
        null plan.  (Lets one plan target the queue but not the
        transports, or one shard but not its siblings.)
    max_ops:
        When given, operations at or beyond this per-site index draw no
        faults — the faults have *cleared*.  This is what makes "bounded
        recovery once faults clear" a provable property instead of a
        race against an everlasting Bernoulli stream: recovery's own
        replay traffic advances the op cursor past the window.
    """

    seed: int = 0
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    delay_rate: float = 0.0
    delay_s: float = 0.0
    kill_ops: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    sites: Optional[FrozenSet[str]] = None
    max_ops: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("drop_rate", "corrupt_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {rate}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.max_ops is not None and self.max_ops < 0:
            raise ValueError(f"max_ops must be >= 0, got {self.max_ops}")
        # Normalize to hashable, comparison-friendly containers so plans
        # can be compared/logged and safely shared across threads.
        object.__setattr__(
            self,
            "kill_ops",
            {
                str(site): tuple(sorted(int(op) for op in ops))
                for site, ops in dict(self.kill_ops).items()
            },
        )
        if self.sites is not None:
            object.__setattr__(
                self, "sites", frozenset(str(s) for s in self.sites)
            )

    # ------------------------------------------------------------------
    @property
    def is_null(self) -> bool:
        """Whether this plan can never inject anything."""
        return (
            self.drop_rate == 0.0
            and self.corrupt_rate == 0.0
            and self.delay_rate == 0.0
            and not self.kill_ops
        )

    def action(self, site: str, op: int) -> Optional[str]:
        """The fault to inject for operation ``op`` at ``site`` (or None).

        Pure: calling it twice with the same arguments returns the same
        answer.  Callers keep their own per-site op counters (see
        :class:`~repro.faults.injection.FaultyTransport`).
        """
        if self.sites is not None and site not in self.sites:
            return None
        if self.max_ops is not None and op >= self.max_ops:
            return None
        if op in self.kill_ops.get(site, ()):
            return "kill"
        if self.is_null:
            return None
        # One independent draw per action keeps each rate exact and the
        # schedule stable when one rate changes and the others do not.
        if self.drop_rate and _draw(self.seed, f"drop/{site}", op) < self.drop_rate:
            return "drop"
        if (
            self.corrupt_rate
            and _draw(self.seed, f"corrupt/{site}", op) < self.corrupt_rate
        ):
            return "corrupt"
        if (
            self.delay_rate
            and _draw(self.seed, f"delay/{site}", op) < self.delay_rate
        ):
            return "delay"
        return None

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """A plan from a CLI spec string.

        Comma-separated ``key=value`` pairs: ``seed`` (int), ``drop`` /
        ``corrupt`` / ``delay`` (rates in [0, 1]), ``delay_ms`` (float),
        ``max_ops`` (int — faults clear at this per-site op index), and
        ``kill=SITE@OP`` (repeatable) for scheduled kills::

            --fault-plan "seed=7,drop=0.02,delay=0.1,delay_ms=5"
            --fault-plan "kill=shard-0-8@3,kill=service-queue@10"

        ``"null"`` (or an empty string) is the explicit null plan.
        """
        text = (spec or "").strip()
        if not text or text == "null":
            return cls()
        kwargs: Dict[str, object] = {}
        kills: Dict[str, list] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key, value = key.strip(), value.strip()
            if not sep or not value:
                raise ValueError(
                    f"bad fault-plan entry {part!r}; expected key=value"
                )
            try:
                if key == "seed":
                    kwargs["seed"] = int(value)
                elif key in ("drop", "corrupt", "delay"):
                    kwargs[f"{key}_rate"] = float(value)
                elif key == "delay_ms":
                    kwargs["delay_s"] = float(value) / 1e3
                elif key == "max_ops":
                    kwargs["max_ops"] = int(value)
                elif key == "kill":
                    site, at, op = value.partition("@")
                    if not at or not site or not op:
                        raise ValueError("expected kill=SITE@OP")
                    kills.setdefault(site.strip(), []).append(int(op))
                else:
                    raise ValueError(f"unknown fault-plan key {key!r}")
            except ValueError as error:
                raise ValueError(
                    f"bad fault-plan entry {part!r}: {error}"
                ) from None
        if kills:
            kwargs["kill_ops"] = {s: tuple(ops) for s, ops in kills.items()}
        return cls(**kwargs)

    def describe(self) -> str:
        """One-line human summary (for logs and server banners)."""
        if self.is_null:
            return "null fault plan"
        parts = [f"seed={self.seed}"]
        if self.drop_rate:
            parts.append(f"drop={self.drop_rate}")
        if self.corrupt_rate:
            parts.append(f"corrupt={self.corrupt_rate}")
        if self.delay_rate:
            parts.append(f"delay={self.delay_rate}@{self.delay_s * 1e3:g}ms")
        for site, ops in sorted(self.kill_ops.items()):
            parts.append(f"kill={site}@{','.join(map(str, ops))}")
        if self.max_ops is not None:
            parts.append(f"max_ops={self.max_ops}")
        return " ".join(parts)


#: The do-nothing plan — wrapping a fabric in it is bitwise-neutral.
NULL_PLAN = FaultPlan()
