"""Adversarial scenarios and fault injection for the service/shard fabric.

The package splits "who misbehaves" three ways:

* :mod:`~repro.faults.plan` — :class:`FaultPlan`, the seeded
  deterministic schedule deciding which transport/queue operations are
  dropped, corrupted, delayed, or killed.
* :mod:`~repro.faults.injection` — :class:`FaultyTransport` /
  :class:`FaultyTransportFactory`, the wrapper executing a plan at the
  shard-transport seam (a null plan is bitwise-neutral).
* :mod:`~repro.faults.adversaries` — :class:`PeerPolicy` Byzantine
  hooks: peers that lie about best responses or refuse rebinds.
* :mod:`~repro.faults.corruption` — seeded bit-flips in evaluator
  caches (the self-stabilization transient-fault model).
* :mod:`~repro.faults.scenarios` — the registered adversarial families
  reporting social-cost degradation and recovery time.
* :mod:`~repro.faults.chaos` — drills that kill real worker/server
  processes and assert bit-identical recovery with zero leaks.
"""

from repro.faults.adversaries import (
    ByzantinePolicy,
    HonestPolicy,
    PeerPolicy,
    PolicyDecision,
    apply_policy,
)
from repro.faults.chaos import (
    ChaosReport,
    server_restart_drill,
    service_chaos_drill,
    worker_kill_drill,
)
from repro.faults.corruption import (
    corrupt_overlay_rows,
    corrupt_service_matrices,
    flip_float_bit,
    repair,
)
from repro.faults.injection import (
    INJECTED,
    FaultyTransport,
    FaultyTransportFactory,
    InjectionLog,
)
from repro.faults.plan import FAULT_ACTIONS, NULL_PLAN, FaultPlan
from repro.faults.scenarios import (
    SCENARIO_FAMILIES,
    byzantine_scenario,
    corruption_scenario,
    run_scenario,
    targeted_churn_scenario,
)

__all__ = [
    "ByzantinePolicy",
    "ChaosReport",
    "FAULT_ACTIONS",
    "FaultPlan",
    "FaultyTransport",
    "FaultyTransportFactory",
    "HonestPolicy",
    "INJECTED",
    "InjectionLog",
    "NULL_PLAN",
    "PeerPolicy",
    "PolicyDecision",
    "SCENARIO_FAMILIES",
    "apply_policy",
    "byzantine_scenario",
    "corrupt_overlay_rows",
    "corrupt_service_matrices",
    "corruption_scenario",
    "flip_float_bit",
    "repair",
    "run_scenario",
    "server_restart_drill",
    "service_chaos_drill",
    "targeted_churn_scenario",
    "worker_kill_drill",
]
