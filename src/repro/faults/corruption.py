"""Transient state corruption: seeded bit-flips in cached matrices.

The self-stabilization literature's fault model is arbitrary transient
state corruption: some memory words change under the protocol's feet,
and the measure of a protocol is how fast legitimate behavior returns
once faults stop.  Here the corruptible state is the evaluator's two
derived caches — the overlay-distance rows and the per-peer service
(``W``) matrices — while the *ground truth* (the metric, the committed
strategies) stays intact, exactly like a transient fault that hits a
cache but not the replicated inputs.

Flips are drawn from the :func:`~repro.faults.plan._draw` SHA-256
scheme, so a scenario's corruption is a pure function of its seed.
Each flip XORs one bit of one float64 cell — a mantissa bit or one of
the four lowest exponent bits, so values swing by up to a factor of
``2**16`` but stay **finite** (a flip that would mint ``inf``/``nan``
falls back to its mantissa-bit shadow, and non-finite cells are never
touched).  ``inf``/``nan`` model a *detectable* fault; the interesting
regime is silent corruption that plausible-looking numbers hide.

Recovery is :func:`repair` — ``evaluator.invalidate()`` — after which
every query recomputes from ground truth; re-convergence is then
measured in best-response epochs by
:mod:`repro.faults.scenarios`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.faults.plan import _draw

__all__ = [
    "flip_float_bit",
    "corrupt_overlay_rows",
    "corrupt_service_matrices",
    "repair",
]

#: float64 mantissa width.
_MANTISSA_BITS = 52
#: Low exponent bits that may also flip — scale swings up to 2**16
#: while an overflow into the inf/nan exponent stays essentially
#: impossible for the matrix magnitudes this package corrupts (and is
#: guarded against regardless).
_EXPONENT_BITS = 4
_FLIP_BITS = _MANTISSA_BITS + _EXPONENT_BITS


def flip_float_bit(values: np.ndarray, flat_index: int, bit: int) -> bool:
    """XOR one bit of ``values.flat[flat_index]`` in place, kept finite.

    ``bit`` may address the mantissa or the ``_EXPONENT_BITS`` lowest
    exponent bits.  Non-finite cells are left alone (a mantissa flip on
    ``inf`` would mint ``nan`` — a *detectable* fault, out of scope),
    and an exponent flip that would overflow falls back to the same
    bit's mantissa shadow.  Returns whether a flip was applied.
    """
    if not 0 <= bit < _FLIP_BITS:
        raise ValueError(f"bit must lie in [0, {_FLIP_BITS}), got {bit}")
    view = values.reshape(-1).view(np.uint64)
    floats = values.reshape(-1)
    if not np.isfinite(floats[flat_index]):
        return False
    view[flat_index] ^= np.uint64(1) << np.uint64(bit)
    if not np.isfinite(floats[flat_index]):
        view[flat_index] ^= np.uint64(1) << np.uint64(bit)
        view[flat_index] ^= np.uint64(1) << np.uint64(bit % _MANTISSA_BITS)
    return True


def _draw_flips(
    seed: int, site: str, count: int, cells: int
) -> List[Tuple[int, int]]:
    """``count`` deterministic ``(flat_index, bit)`` pairs over ``cells``.

    Half the flips (in expectation) land on exponent bits: a uniform
    draw over all 56 flippable bits almost always hits a low mantissa
    bit, whose perturbation vanishes next to the link price ``alpha`` —
    corruption that can never flip a decision measures nothing.
    """
    flips = []
    for k in range(count):
        cell = int(_draw(seed, f"{site}/cell", k) * cells)
        sub = _draw(seed, f"{site}/bit", k)
        if _draw(seed, f"{site}/kind", k) < 0.5:
            bit = _MANTISSA_BITS + int(sub * _EXPONENT_BITS)
        else:
            bit = int(sub * _MANTISSA_BITS)
        flips.append((min(cell, cells - 1), min(bit, _FLIP_BITS - 1)))
    return flips


def corrupt_overlay_rows(
    evaluator, *, seed: int = 0, flips: int = 8
) -> List[Tuple[int, int, int]]:
    """Flip bits in the evaluator's cached overlay-distance matrix.

    Materializes the matrix first (corrupting an empty cache would be a
    no-op), then applies ``flips`` seeded mantissa flips in place.
    Returns the ``(row, col, bit)`` triples actually flipped.  Only the
    monolithic :class:`~repro.core.evaluator.GameEvaluator` cache is
    targeted — sharded evaluators keep rows elsewhere.
    """
    dist = evaluator.overlay_distances()
    n = dist.shape[1]
    applied = []
    for cell, bit in _draw_flips(seed, "overlay", flips, dist.size):
        if flip_float_bit(dist, cell, bit):
            applied.append((cell // n, cell % n, bit))
    # Stretch and social-cost caches were derived from the clean rows;
    # drop them so corrupted values actually flow into later queries.
    evaluator._stretch = None
    return applied


def corrupt_service_matrices(
    evaluator,
    *,
    seed: int = 0,
    flips: int = 8,
    peers: Optional[Sequence[int]] = None,
) -> List[Tuple[int, int, int]]:
    """Flip bits in cached service (``W``) matrices via the store API.

    Targets the matrices already resident in the evaluator's service
    store (``peers`` narrows the candidates); each flip rewrites one
    corrupted row through ``write_rows``, so every store flavor
    (memory, shared, spill) takes the corruption identically.  Returns
    ``(peer, row, bit)`` per flip; empty when nothing is cached.
    """
    store = evaluator._store
    keys = sorted(store.keys())
    if peers is not None:
        wanted = set(int(p) for p in peers)
        keys = [k for k in keys if k in wanted]
    if not keys:
        return []
    applied = []
    for k, (cell, bit) in enumerate(
        _draw_flips(seed, "service", flips, len(keys) * (1 << 20))
    ):
        peer = keys[cell % len(keys)]
        weights = store.get(peer)
        rows, cols = weights.shape
        row = int(_draw(seed, "service/row", k) * rows)
        row = min(row, rows - 1)
        corrupted = np.array(weights[row], dtype=np.float64, copy=True)
        col = int(_draw(seed, "service/col", k) * cols)
        if not flip_float_bit(corrupted, min(col, cols - 1), bit):
            continue
        store.write_rows(peer, [row], corrupted[np.newaxis, :])
        # The evaluator memoizes "matrix unchanged since last solve";
        # a silent corruption must not be masked by that memo.
        entry = evaluator._service.get(peer)
        if entry is not None:
            entry.memo = None
            entry.changed_since_memo = True
        applied.append((peer, row, bit))
    return applied


def repair(evaluator) -> None:
    """Restore legitimacy: drop every derived cache.

    After :func:`repair` the next query recomputes from the metric and
    the committed strategies — the ground truth corruption never
    touched — so the evaluator is byte-identical to a freshly built
    one.  This is the "fault detected, caches rebuilt" recovery whose
    cost the scenarios measure.
    """
    evaluator.invalidate()
