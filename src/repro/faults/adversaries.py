"""Byzantine peer behavior: the ``PeerPolicy`` commit hook.

The paper's peers are selfish but *honest*: every rebind they commit is
the best response they actually computed.  The related self-stabilizing
literature asks what happens when some are not — peers that misreport
distances (committing links their own cost function would never pick)
or refuse to follow the rebind protocol at all.

:class:`PeerPolicy` is the seam: both epoch commit loops
(:meth:`repro.service.state.ServiceState._rebind_batch` and
:meth:`repro.simulation.churn.ChurnSimulation._run_epoch_batched`) pass
each peer's freshly-solved best response through
:meth:`PeerPolicy.decide` before committing.  The policy may wave it
through (honest), replace it with a fabricated one (misreporting), or
suppress it (refusal).  ``peer_policy=None`` — the default everywhere —
skips the hook entirely, so honest runs execute today's exact code
path, byte for byte.

Policies must be **deterministic** in ``(epoch, peer)``: journal replay
re-runs the same epochs through the same policy, and only a
deterministic policy keeps the replay digest-identical (the property
the chaos harness pins).  :class:`ByzantinePolicy` draws its lies from
the same SHA-256 scheme as :class:`~repro.faults.plan.FaultPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.best_response import BestResponseResult
from repro.faults.plan import _draw

__all__ = [
    "PolicyDecision",
    "PeerPolicy",
    "HonestPolicy",
    "ByzantinePolicy",
]


@dataclass(frozen=True)
class PolicyDecision:
    """What a policy did with one peer's solved best response.

    ``response=None`` means the peer refuses this rebind outright (the
    commit loop treats it as not-improved).  ``commit_check=False``
    bypasses the stale-profile ``recheck_improvement`` gate — a
    Byzantine commit does not re-verify its own lie against the live
    profile; honest responses keep the check.
    """

    response: Optional[BestResponseResult]
    commit_check: bool = True


class PeerPolicy:
    """Decide, per epoch commit, what each peer reports."""

    def decide(
        self,
        *,
        peer: int,
        slot: int,
        epoch: int,
        response: BestResponseResult,
        active: Sequence[int],
    ) -> PolicyDecision:
        """``peer`` is the global id, ``slot`` its index in ``active``;
        ``response.strategy`` holds slot indices.  Must be a pure
        function of its arguments (determinism rule above)."""
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class HonestPolicy(PeerPolicy):
    """Every response passes through untouched (the explicit baseline).

    Semantically identical to ``peer_policy=None``; exists so scenario
    configs can name "honest" explicitly and so tests can pin that the
    hook itself — not just its absence — leaves trajectories unchanged.
    """

    def decide(self, *, peer, slot, epoch, response, active):
        return PolicyDecision(response)


class ByzantinePolicy(PeerPolicy):
    """Some peers lie about their best response; some refuse to rebind.

    ``liars`` misreport: inside the fault window, a liar's solved
    response is replaced by a fabricated "improvement" to a single
    deterministically-drawn link — a target its true cost function did
    not choose — and committed without the stale-profile re-check (the
    lie does not audit itself).  ``refusers`` never rebind inside the
    window: their responses are suppressed, so they keep whatever links
    they already hold while the honest majority adapts around them.

    The window ``[start, stop)`` bounds the attack in epochs
    (``stop=None`` means forever); outside it every peer is honest,
    which is what lets scenarios measure *recovery* once the attack
    stops.  All draws come from ``seed`` via SHA-256, so the same
    policy over the same epochs produces the same lies — in the live
    run and in its journal replay.
    """

    def __init__(
        self,
        liars: Sequence[int] = (),
        refusers: Sequence[int] = (),
        *,
        seed: int = 0,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> None:
        self.liars = frozenset(int(p) for p in liars)
        self.refusers = frozenset(int(p) for p in refusers)
        overlap = self.liars & self.refusers
        if overlap:
            raise ValueError(
                f"peers {sorted(overlap)} cannot both lie and refuse"
            )
        self.seed = int(seed)
        self.start = int(start)
        self.stop = None if stop is None else int(stop)
        if self.stop is not None and self.stop < self.start:
            raise ValueError(
                f"fault window [{self.start}, {self.stop}) is empty-negative"
            )

    def in_window(self, epoch: int) -> bool:
        return epoch >= self.start and (
            self.stop is None or epoch < self.stop
        )

    def _lie_target(
        self, peer: int, epoch: int, slot: int, n_active: int
    ) -> int:
        """A deterministically-drawn wrong link (a slot != ``slot``)."""
        pick = int(
            _draw(self.seed, f"lie/{peer}", epoch) * (n_active - 1)
        )
        return pick if pick < slot else pick + 1

    def decide(self, *, peer, slot, epoch, response, active):
        if not self.in_window(epoch):
            return PolicyDecision(response)
        if peer in self.refusers:
            return PolicyDecision(None)
        if peer in self.liars and len(active) > 1:
            target = self._lie_target(peer, epoch, slot, len(active))
            fake = BestResponseResult(
                response.peer,
                frozenset({target}),
                response.cost,
                response.current_cost,
                True,
                response.method,
            )
            return PolicyDecision(fake, commit_check=False)
        return PolicyDecision(response)

    def describe(self) -> str:
        window = (
            f"[{self.start}, {'∞' if self.stop is None else self.stop})"
        )
        return (
            f"ByzantinePolicy(liars={sorted(self.liars)}, "
            f"refusers={sorted(self.refusers)}, window={window}, "
            f"seed={self.seed})"
        )


def apply_policy(
    policy: Optional[PeerPolicy],
    *,
    peer: int,
    slot: int,
    epoch: int,
    response: BestResponseResult,
    active: Sequence[int],
) -> Tuple[Optional[BestResponseResult], bool]:
    """The commit loops' one-liner: ``(response or None, commit_check)``.

    Kept here so both loops apply a policy with identical semantics, and
    so the no-policy fast path stays an attribute test.
    """
    if policy is None:
        return response, True
    decision = policy.decide(
        peer=peer, slot=slot, epoch=epoch, response=response, active=active
    )
    return decision.response, decision.commit_check
