"""Adversarial scenario families with measured recovery.

Each family perturbs a converged overlay in a different adversarial
regime and reports the same recovery metrics, so the e20 benchmark and
the E12 experiment can compare regimes side by side:

* :func:`byzantine_scenario` — a window of epochs during which a seeded
  subset of peers lies about its best response (committing links no
  honest re-check would accept) or refuses to rebind at all, driven
  through the :class:`~repro.service.state.ServiceState` commit hook.
* :func:`corruption_scenario` — transient state corruption: seeded
  mantissa bit-flips in the evaluator's overlay-distance and service
  (``W``) caches, one best-response epoch run *on* the corrupted state
  (peers commit moves justified by garbage), then cache repair and
  measured re-convergence — the self-stabilization fault model.
* :func:`targeted_churn_scenario` — a churn *attack*: the adversary
  reads the overlay graph and simultaneously crashes the ``k`` peers
  with the highest betweenness centrality (preferring cut vertices),
  versus the seeded random-``k`` crash baseline of ordinary churn.

Every scenario returns a flat JSON-friendly dict with at least
``family``, ``seed``, ``baseline_cost`` (social cost at honest
convergence), ``peak_cost`` (worst measured true cost after the
perturbation), ``degradation`` (= peak/baseline), ``recovery_epochs``
(all-peer best-response epochs from the end of the perturbation until a
zero-move epoch) and ``converged``.  Dicts are **pure functions of the
scenario parameters** — no wall-clock, no process state — which is what
lets the e20 benchmark assert run-to-run determinism.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.faults.adversaries import ByzantinePolicy
from repro.faults.corruption import (
    corrupt_overlay_rows,
    corrupt_service_matrices,
    repair,
)
from repro.faults.plan import _draw

__all__ = [
    "SCENARIO_FAMILIES",
    "byzantine_scenario",
    "corruption_scenario",
    "run_scenario",
    "targeted_churn_scenario",
]


def _peak(costs: Sequence[float], baseline: float) -> Tuple[float, int]:
    """Worst *finite* cost plus the count of disconnected epochs.

    An attack that cuts the overlay prices at ``inf`` social cost;
    ``inf`` is not JSON-serializable and drowns every finite signal, so
    disconnection is reported as its own count and the peak stays the
    worst connected reading (floored at baseline).
    """
    finite = [cost for cost in costs if math.isfinite(cost)]
    peak = max(finite) if finite else baseline
    return max(peak, baseline), sum(
        1 for cost in costs if not math.isfinite(cost)
    )


def _pick(seed: int, site: str, pool: Sequence[int], count: int) -> List[int]:
    """Seeded sample without replacement from ``pool`` (order-stable)."""
    remaining = list(pool)
    picks: List[int] = []
    for k in range(min(count, len(remaining))):
        index = int(_draw(seed, site, k) * len(remaining))
        picks.append(remaining.pop(min(index, len(remaining) - 1)))
    return picks


def _drive(state, *, max_epochs: int) -> List[Tuple[int, float]]:
    """All-active rebind epochs until the first zero-move epoch.

    Returns the per-epoch ``(moves, social_cost)`` trajectory; the run
    converged iff the last entry has zero moves.
    """
    from repro.service.requests import Request

    trajectory: List[Tuple[int, float]] = []
    for _ in range(max_epochs):
        outcome = state.apply_epoch(
            [Request("rebind", peer) for peer in state.active]
        )
        trajectory.append((outcome.moves, outcome.social_cost))
        if outcome.moves == 0:
            break
    return trajectory


def _make_state(n: int, alpha: float, seed: int, **harness):
    from repro.metrics.euclidean import EuclideanMetric
    from repro.service.state import ServiceState

    metric = EuclideanMetric.random_uniform(n, dim=2, seed=seed)
    return ServiceState(
        metric, alpha, initial_active=range(n), **harness
    )


# ----------------------------------------------------------------------
def byzantine_scenario(
    *,
    n: int = 24,
    alpha: float = 2.0,
    seed: int = 0,
    liars: int = 3,
    refusers: int = 2,
    attack_epochs: int = 4,
    max_epochs: int = 40,
    **harness: Any,
) -> Dict[str, Any]:
    """Byzantine window: converge honest, lie/refuse, measure recovery.

    The policy window is pinned to absolute epochs, so replaying the
    run's journal with the same policy object reproduces it digest for
    digest (the property the chaos tests pin).
    """
    with _make_state(n, alpha, seed, **harness) as state:
        honest = _drive(state, max_epochs=max_epochs)
        baseline = honest[-1][1]
        picks = _pick(seed, "byzantine", state.active, liars + refusers)
        policy = ByzantinePolicy(
            liars=picks[:liars],
            refusers=picks[liars:],
            seed=seed,
            start=state.epoch,
            stop=state.epoch + attack_epochs,
        )
        state.peer_policy = policy
        attack: List[Tuple[int, float]] = []
        from repro.service.requests import Request

        for _ in range(attack_epochs):
            outcome = state.apply_epoch(
                [Request("rebind", peer) for peer in state.active]
            )
            attack.append((outcome.moves, outcome.social_cost))
        # The window has closed (epoch >= stop): the same policy object
        # is now a pass-through, so recovery runs honest.
        recovery = _drive(state, max_epochs=max_epochs)
        peak, disconnected = _peak(
            [cost for _, cost in attack + recovery], baseline
        )
        return {
            "family": "byzantine",
            "seed": seed,
            "n": n,
            "alpha": alpha,
            "liars": sorted(picks[:liars]),
            "refusers": sorted(picks[liars:]),
            "attack_epochs": attack_epochs,
            "attack_moves": sum(moves for moves, _ in attack),
            "baseline_cost": baseline,
            "peak_cost": peak,
            "degradation": peak / baseline,
            "disconnected_epochs": disconnected,
            "final_cost": recovery[-1][1],
            "recovery_epochs": len(recovery),
            "converged": recovery[-1][0] == 0,
        }


# ----------------------------------------------------------------------
def corruption_scenario(
    *,
    n: int = 24,
    alpha: float = 2.0,
    seed: int = 0,
    overlay_flips: int = 24,
    service_flips: int = 64,
    max_epochs: int = 40,
    method: str = "greedy",
    **_harness: Any,
) -> Dict[str, Any]:
    """Transient cache corruption: flip bits, decide on garbage, repair.

    Runs on a monolithic :class:`~repro.core.evaluator.GameEvaluator`
    (the family targets its caches directly; harness placement knobs are
    accepted for a uniform call signature but unused).  One full
    best-response epoch executes *while corrupted* — peers may commit
    moves justified only by the flipped bits — then :func:`repair`
    drops every derived cache and recovery is measured honest.
    """
    from repro.core.dynamics import batch_responses, recheck_improvement
    from repro.core.evaluator import GameEvaluator
    from repro.core.game import TopologyGame
    from repro.metrics.euclidean import EuclideanMetric

    metric = EuclideanMetric.random_uniform(n, dim=2, seed=seed)
    game = TopologyGame(metric, alpha)
    profile = game.random_profile(0.2, seed=seed)

    def sweep(evaluator, profile) -> Tuple[Any, int, float]:
        responses = batch_responses(
            game, profile, list(range(n)), method, evaluator
        )
        moves = 0
        base = profile
        for response in responses:
            if not response.improved:
                continue
            commit = True
            if profile is not base:
                commit, _old, _new = recheck_improvement(
                    game, profile, response, evaluator
                )
            if commit:
                profile = profile.with_strategy(
                    response.peer, response.strategy
                )
                moves += 1
        cost = evaluator.set_profile(profile).social_cost().total
        return profile, moves, cost

    with GameEvaluator(game, profile) as evaluator:
        baseline = float("nan")
        converged_before = False
        for _ in range(max_epochs):
            profile, moves, baseline = sweep(evaluator, profile)
            if moves == 0:
                converged_before = True
                break

        overlay = corrupt_overlay_rows(
            evaluator, seed=seed, flips=overlay_flips
        )
        matrices = corrupt_service_matrices(
            evaluator, seed=seed, flips=service_flips
        )
        # One epoch of decisions made against the corrupted caches.
        profile, corrupted_moves, _observed = sweep(evaluator, profile)

        repair(evaluator)
        # The honest price of the garbage-justified commits, read before
        # recovery starts un-committing them.
        degraded = evaluator.set_profile(profile).social_cost().total
        recovery: List[Tuple[int, float]] = []
        for _ in range(max_epochs):
            profile, moves, cost = sweep(evaluator, profile)
            recovery.append((moves, cost))
            if moves == 0:
                break
        peak, disconnected = _peak(
            [degraded] + [cost for _, cost in recovery], baseline
        )
        return {
            "family": "corruption",
            "seed": seed,
            "n": n,
            "alpha": alpha,
            "overlay_flips": len(overlay),
            "service_flips": len(matrices),
            "corrupted_moves": corrupted_moves,
            "baseline_cost": baseline,
            "peak_cost": peak,
            "degradation": peak / baseline,
            "disconnected_epochs": disconnected,
            "final_cost": recovery[-1][1],
            "recovery_epochs": len(recovery),
            "converged": converged_before and recovery[-1][0] == 0,
        }


# ----------------------------------------------------------------------
def targeted_churn_scenario(
    *,
    n: int = 24,
    alpha: float = 2.0,
    seed: int = 0,
    crash_count: int = 3,
    max_epochs: int = 40,
    targeted: bool = True,
    **harness: Any,
) -> Dict[str, Any]:
    """Crash the ``k`` highest-betweenness peers; measure re-convergence.

    With ``targeted=False`` the same machinery crashes a seeded random
    ``k``-subset instead — the ordinary-churn baseline the attack is
    compared against (same seed, same universe, same ``k``).
    """
    import networkx as nx

    from repro.service.requests import Request

    with _make_state(n, alpha, seed, **harness) as state:
        honest = _drive(state, max_epochs=max_epochs)
        baseline = honest[-1][1]

        active, strategies = state.snapshot()
        if targeted:
            graph = nx.Graph()
            graph.add_nodes_from(active)
            for peer, links in zip(active, strategies):
                graph.add_edges_from((peer, target) for target in links)
            centrality = nx.betweenness_centrality(graph)
            cut_vertices = set(nx.articulation_points(graph))
            # Cut vertices first (their loss disconnects the overlay),
            # then by centrality; ties break to the lowest peer id so
            # the target list is deterministic.
            ranked = sorted(
                active,
                key=lambda p: (
                    p not in cut_vertices,
                    -centrality.get(p, 0.0),
                    p,
                ),
            )
            targets = ranked[:crash_count]
        else:
            targets = _pick(seed, "random-crash", active, crash_count)

        crash = state.apply_epoch(
            [Request("leave", peer) for peer in targets]
        )
        post_crash = _drive(state, max_epochs=max_epochs)
        rejoin = state.apply_epoch(
            [Request("join", peer) for peer in targets]
        )
        recovery = _drive(state, max_epochs=max_epochs)

        costs = (
            [crash.social_cost]
            + [cost for _, cost in post_crash]
            + [rejoin.social_cost]
            + [cost for _, cost in recovery]
        )
        peak, disconnected = _peak(costs, baseline)
        return {
            "family": "targeted-churn" if targeted else "random-churn",
            "seed": seed,
            "n": n,
            "alpha": alpha,
            "crashed": sorted(int(p) for p in targets),
            "baseline_cost": baseline,
            "peak_cost": peak,
            "degradation": peak / baseline,
            "disconnected_epochs": disconnected,
            "final_cost": recovery[-1][1],
            "recovery_epochs": len(post_crash) + len(recovery),
            "converged": recovery[-1][0] == 0,
        }


#: Registry for the E12 experiment and the e20 benchmark: name → runner.
SCENARIO_FAMILIES = {
    "byzantine": byzantine_scenario,
    "corruption": corruption_scenario,
    "targeted-churn": targeted_churn_scenario,
}


def run_scenario(family: str, **params: Any) -> Dict[str, Any]:
    """Run one registered family by name (raises on unknown names)."""
    try:
        runner = SCENARIO_FAMILIES[family]
    except KeyError:
        known = ", ".join(sorted(SCENARIO_FAMILIES))
        raise ValueError(
            f"unknown scenario family {family!r} (known: {known})"
        ) from None
    return runner(**params)
