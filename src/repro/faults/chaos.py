"""Chaos drills: kill real processes, assert bounded recovery.

Where :mod:`repro.faults.scenarios` attacks the *game*, the drills here
attack the *fabric*: they kill actual shard worker processes and shard
servers mid-run and assert the three recovery properties the ROADMAP
demands of the service tier:

1. **Bounded recovery** — the run completes, every kill produces a
   worker-recovery event with a measured recovery time, and results are
   **bit-identical** to the undisturbed run (recovery replays protocol
   history; it never approximates).
2. **Digest-identical replay** — a journal written under an active
   fault plan replays clean (no faults, any placement) digest for
   digest: faults may slow epochs down, never change what they commit.
3. **No leaks** — after ``close()`` the drill's process tree and file
   descriptor table are back to their pre-drill size: no orphaned
   workers, servers, pipes, or sockets.

Each drill returns a :class:`ChaosReport`; ``recovery_seconds`` carries
wall-clock times (the only nondeterministic fields — everything else is
a pure function of the drill parameters).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "ChaosReport",
    "server_restart_drill",
    "service_chaos_drill",
    "worker_kill_drill",
]


def _live_children() -> int:
    import multiprocessing

    # join_thread=False children that already exited still linger in
    # active_children() until joined; poke the list twice so finished
    # processes are reaped and only genuinely live ones are counted.
    children = multiprocessing.active_children()
    return sum(1 for child in children if child.is_alive())


def _open_fds() -> int:
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:  # pragma: no cover - non-Linux fallback
        return 0


@dataclass(frozen=True)
class ChaosReport:
    """Outcome of one drill, JSON-friendly via :meth:`as_dict`."""

    name: str
    epochs: int
    kills: int
    recoveries: int
    recovery_seconds: Tuple[float, ...]
    server_restarts: int
    replay_identical: Optional[bool]
    results_identical: Optional[bool]
    leaked_processes: int
    leaked_fds: int
    final_cost: float
    notes: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def clean(self) -> bool:
        """Every asserted property held."""
        return (
            self.recoveries >= self.kills
            and self.replay_identical is not False
            and self.results_identical is not False
            and self.leaked_processes == 0
            and self.leaked_fds == 0
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "epochs": self.epochs,
            "kills": self.kills,
            "recoveries": self.recoveries,
            "recovery_seconds": list(self.recovery_seconds),
            "server_restarts": self.server_restarts,
            "replay_identical": self.replay_identical,
            "results_identical": self.results_identical,
            "leaked_processes": self.leaked_processes,
            "leaked_fds": self.leaked_fds,
            "final_cost": self.final_cost,
            "clean": self.clean,
            "notes": list(self.notes),
        }


def _converge_sweeps(game, evaluator, profile, sweeps: int, method: str):
    """``sweeps`` stale-batch epochs with re-checks; returns the profile
    trajectory of per-epoch ``(moves, social_cost)`` plus the final
    profile — the comparable unit both arms of a drill execute."""
    from repro.core.dynamics import batch_responses, recheck_improvement

    trajectory: List[Tuple[int, float]] = []
    for _ in range(sweeps):
        responses = batch_responses(
            game, profile, list(range(game.n)), method, evaluator
        )
        moves = 0
        base = profile
        for response in responses:
            if not response.improved:
                continue
            commit = True
            if profile is not base:
                commit, _old, _new = recheck_improvement(
                    game, profile, response, evaluator
                )
            if commit:
                profile = profile.with_strategy(
                    response.peer, response.strategy
                )
                moves += 1
        cost = evaluator.set_profile(profile).social_cost().total
        trajectory.append((moves, cost))
    return trajectory, profile


def _reference_run(game, profile, sweeps: int, method: str):
    from repro.core.evaluator import GameEvaluator

    with GameEvaluator(game, profile) as evaluator:
        return _converge_sweeps(game, evaluator, profile, sweeps, method)


def _drill_game(n: int, alpha: float, seed: int):
    from repro.core.game import TopologyGame
    from repro.metrics.euclidean import EuclideanMetric

    metric = EuclideanMetric.random_uniform(n, dim=2, seed=seed)
    game = TopologyGame(metric, alpha)
    return game, game.random_profile(0.2, seed=seed)


# ----------------------------------------------------------------------
def worker_kill_drill(
    *,
    n: int = 16,
    alpha: float = 2.0,
    seed: int = 0,
    shards: int = 2,
    sweeps: int = 3,
    kills: int = 2,
    method: str = "greedy",
    placement: str = "process",
) -> ChaosReport:
    """Kill shard workers between sweeps; the pool must resurrect them.

    Each kill targets shard ``k % shards`` after sweep ``k``; the next
    request to that shard observes a between-requests death, and the
    recovery policy respawns the worker and replays its protocol
    history.  Results must equal the undisturbed monolithic run bit for
    bit.
    """
    from repro.core.sharded import build_sharded_evaluator

    game, profile = _drill_game(n, alpha, seed)
    expected, _final = _reference_run(game, profile, sweeps, method)

    fds_before = _open_fds()
    procs_before = _live_children()
    evaluator = build_sharded_evaluator(
        game, profile, shards=shards, placement=placement, recovery=True
    )
    notes: List[str] = []
    killed = 0
    try:
        trajectory: List[Tuple[int, float]] = []
        for sweep in range(sweeps):
            step, profile = _converge_sweeps(
                game, evaluator, profile, 1, method
            )
            trajectory.extend(step)
            if killed < kills:
                evaluator.worker_pool.kill_worker(killed % shards)
                killed += 1
        pool = evaluator.worker_pool
        events = list(pool.recovery_events)
        restarts = getattr(pool._factory, "server_restarts", 0)
    finally:
        evaluator.close()
    time.sleep(0.05)  # let killed children finish reaping

    return ChaosReport(
        name=f"worker-kill[{placement}]",
        epochs=sweeps,
        kills=killed,
        recoveries=len(events),
        recovery_seconds=tuple(event["seconds"] for event in events),
        server_restarts=restarts,
        replay_identical=None,
        results_identical=trajectory == expected,
        leaked_processes=max(0, _live_children() - procs_before),
        leaked_fds=max(0, _open_fds() - fds_before),
        final_cost=trajectory[-1][1],
        notes=tuple(notes),
    )


# ----------------------------------------------------------------------
def server_restart_drill(
    *,
    n: int = 16,
    alpha: float = 2.0,
    seed: int = 0,
    shards: int = 2,
    sweeps: int = 3,
    method: str = "greedy",
) -> ChaosReport:
    """SIGKILL the auto-spawned shard *server* mid-run.

    Every socket transport dies at once; recovery must reap the dead
    server, spawn a fresh one, reconnect every shard, replay protocol
    history, and finish with bit-identical results — the shard-server
    restart/reconnect story the ROADMAP carried.
    """
    from repro.core.sharded import build_sharded_evaluator

    game, profile = _drill_game(n, alpha, seed)
    expected, _final = _reference_run(game, profile, sweeps, method)

    fds_before = _open_fds()
    procs_before = _live_children()
    evaluator = build_sharded_evaluator(
        game, profile, shards=shards, placement="socket", recovery=shards + 1
    )
    try:
        trajectory: List[Tuple[int, float]] = []
        step, profile = _converge_sweeps(game, evaluator, profile, 1, method)
        trajectory.extend(step)
        pool = evaluator.worker_pool
        pool._factory.kill_server()
        step, profile = _converge_sweeps(
            game, evaluator, profile, sweeps - 1, method
        )
        trajectory.extend(step)
        events = list(pool.recovery_events)
        restarts = pool._factory.server_restarts
    finally:
        evaluator.close()
    time.sleep(0.05)

    return ChaosReport(
        name="server-restart",
        epochs=sweeps,
        kills=1,
        recoveries=len(events),
        recovery_seconds=tuple(event["seconds"] for event in events),
        server_restarts=restarts,
        replay_identical=None,
        results_identical=trajectory == expected,
        leaked_processes=max(0, _live_children() - procs_before),
        leaked_fds=max(0, _open_fds() - fds_before),
        final_cost=trajectory[-1][1],
    )


# ----------------------------------------------------------------------
def service_chaos_drill(
    *,
    n: int = 16,
    alpha: float = 2.0,
    seed: int = 0,
    shards: int = 2,
    epochs: int = 6,
    drop_rate: float = 0.3,
    fault_window: int = 10,
    method: str = "greedy",
) -> ChaosReport:
    """Run the full service stack under an active fault plan, then
    replay its journal clean.

    Every epoch submits an all-active rebind batch through a
    :class:`~repro.service.state.ServiceState` whose shard transports
    drop requests at ``drop_rate`` (each drop kills the worker's
    connection — a crash, not a hiccup) for each epoch's first
    ``fault_window`` per-site operations, after which the faults clear
    (``FaultPlan.max_ops``) and the recovery policy's retries are
    guaranteed to land.  The journal written under fire must then
    replay **digest-identical** with no fault plan at all: faults are
    performance events, never semantic ones.
    """
    from repro.faults.plan import FaultPlan
    from repro.service.journal import ServiceJournal, replay_journal
    from repro.service.requests import Request
    from repro.service.state import ServiceState
    from repro.metrics.euclidean import EuclideanMetric

    metric = EuclideanMetric.random_uniform(n, dim=2, seed=seed)
    plan = FaultPlan(seed=seed, drop_rate=drop_rate, max_ops=fault_window)

    fds_before = _open_fds()
    procs_before = _live_children()
    journal = ServiceJournal()
    with ServiceState(
        metric,
        alpha,
        initial_active=range(n),
        method=method,
        journal=journal,
        shards=shards,
        shard_placement="process",
        fault_plan=plan,
        recovery=max(4, shards * epochs),
    ) as state:
        final_cost = float("nan")
        for _ in range(epochs):
            outcome = state.apply_epoch(
                [Request("rebind", peer) for peer in state.active]
            )
            final_cost = outcome.social_cost
        events = list(state.recovery_log)
    time.sleep(0.05)
    leaked_processes = max(0, _live_children() - procs_before)
    leaked_fds = max(0, _open_fds() - fds_before)

    replayed = replay_journal(
        journal, metric, alpha, initial_active=range(n), method=method
    )
    replay_identical = [record.digest for record in journal.records] == list(
        replayed.digests
    )

    return ChaosReport(
        name="service-chaos",
        epochs=epochs,
        kills=len(events),
        recoveries=len(events),
        recovery_seconds=tuple(event["seconds"] for event in events),
        server_restarts=0,
        replay_identical=replay_identical,
        results_identical=None,
        leaked_processes=leaked_processes,
        leaked_fds=leaked_fds,
        final_cost=final_cost,
    )
