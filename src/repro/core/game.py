"""The selfish P2P topology-formation game.

:class:`TopologyGame` bundles a metric space with the trade-off parameter
``alpha`` and exposes the model of Section 2 of the paper: individual and
social costs, stretch matrices, best responses, and Nash verification.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core import best_response as br
from repro.core.cost_model import CostModel, resolve_cost_model
from repro.core.costs import CostBreakdown
from repro.core.profile import StrategyProfile
from repro.core.topology import build_overlay
from repro.graphs.digraph import WeightedDigraph
from repro.metrics.base import MetricSpace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.evaluator import GameEvaluator

__all__ = ["TopologyGame"]


class TopologyGame:
    """The topology game ``(M, alpha)`` of selfish peers in a metric space.

    Parameters
    ----------
    metric:
        The metric space the peers live in (pairwise latencies).
    alpha:
        Relative weight of link-maintenance cost versus stretch cost.
        Larger ``alpha`` means links are more expensive; the paper proves
        the Price of Anarchy grows as ``Theta(min(alpha, n))``.
    cost_model:
        Optional :class:`~repro.core.cost_model.CostModel` adding a
        per-peer term to the paper's cost (must carry the same
        ``alpha``).  ``None`` is the paper's game; an explicit
        :class:`~repro.core.cost_model.UnilateralModel` is bitwise
        identical to ``None``.  Models honor the externality contract
        (the term is independent of each peer's own strategy), so best
        responses and equilibria are model-independent — only the
        accounting surfaces (``social_cost`` / ``individual_costs`` /
        ``cost``) consult the model.

    Examples
    --------
    >>> from repro.metrics import EuclideanMetric
    >>> metric = EuclideanMetric.random_uniform(6, dim=2, seed=7)
    >>> game = TopologyGame(metric, alpha=2.0)
    >>> profile = game.complete_profile()
    >>> game.social_cost(profile).total > 0
    True
    """

    def __init__(
        self,
        metric: MetricSpace,
        alpha: float,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self._metric = metric
        self._alpha = float(alpha)
        self._cost_model = resolve_cost_model(cost_model, self._alpha)
        self._dmat = metric.distance_matrix()
        self._evaluator: Optional["GameEvaluator"] = None

    # ------------------------------------------------------------------
    @property
    def metric(self) -> MetricSpace:
        """The underlying metric space."""
        return self._metric

    @property
    def alpha(self) -> float:
        """The link-cost / stretch-cost trade-off parameter."""
        return self._alpha

    @property
    def cost_model(self) -> Optional[CostModel]:
        """The game's cost model, or ``None`` for the paper's default."""
        return self._cost_model

    @property
    def n(self) -> int:
        """Number of peers."""
        return self._metric.n

    @property
    def distance_matrix(self) -> np.ndarray:
        """Dense metric distance matrix (read-only)."""
        return self._dmat

    def with_alpha(self, alpha: float) -> "TopologyGame":
        """Same metric (and cost-model family), different trade-off."""
        model = self._cost_model
        return TopologyGame(
            self._metric,
            alpha,
            cost_model=None if model is None else model.with_alpha(alpha),
        )

    # ------------------------------------------------------------------
    # Evaluation layer
    # ------------------------------------------------------------------
    @property
    def evaluator(self) -> "GameEvaluator":
        """The game's shared incremental evaluator (lazily created).

        Every cost and best-response query on this game routes through
        this evaluator, so a whole dynamics run — any code path that
        changes one peer's strategy at a time — reuses warm overlay
        distances and service-cost matrices automatically.

        Sharing a cache makes these queries *stateful*: results are
        unchanged, but concurrent queries on one game (threads, or two
        interleaved dynamics runs that want isolated caches) must each
        use their own :meth:`make_evaluator` instead — the shared
        evaluator rebinds and repairs its caches in place and is not
        thread-safe.
        """
        if self._evaluator is None:
            from repro.core.evaluator import GameEvaluator

            self._evaluator = GameEvaluator(self)
        return self._evaluator

    def make_evaluator(
        self,
        profile: Optional[StrategyProfile] = None,
        shards: Optional[int] = None,
        store="memory",
        placement: Optional[str] = None,
        max_resident_shards: Optional[int] = None,
        shard_hosts=None,
    ) -> "GameEvaluator":
        """A fresh, independent evaluator (isolated cache).

        ``shards`` switches to a
        :class:`~repro.core.sharded.ShardedEvaluator` with that many
        row-block shards — same interface and identical trajectories,
        with resident overlay-distance memory bounded to roughly
        ``1/shards`` and one service store (``store`` spec) per shard.
        ``placement="process"`` additionally moves each shard's distance
        block into its own worker process
        (:mod:`repro.core.shard_workers`), and ``placement="socket"``
        hosts those workers behind :mod:`repro.shard_server` processes
        reached over TCP/Unix sockets (``shard_hosts`` names the
        servers; ``None`` auto-spawns one same-host);
        ``max_resident_shards`` budgets the locally resident blocks.
        All require ``shards``.
        """
        if shards is not None:
            from repro.core.sharded import build_sharded_evaluator

            return build_sharded_evaluator(
                self,
                profile,
                store=store,
                shards=shards,
                placement=placement,
                max_resident_shards=max_resident_shards,
                shard_hosts=shard_hosts,
            )
        from repro.core.sharded import check_shard_options

        check_shard_options(shards, placement, max_resident_shards, shard_hosts)
        from repro.core.evaluator import GameEvaluator

        return GameEvaluator(self, profile, store=store)

    # ------------------------------------------------------------------
    # Topologies and costs
    # ------------------------------------------------------------------
    def overlay(self, profile: StrategyProfile) -> WeightedDigraph:
        """The overlay graph ``G[s]`` induced by ``profile`` (fresh copy)."""
        return build_overlay(self._metric, profile)

    def stretches(self, profile: StrategyProfile) -> np.ndarray:
        """Pairwise stretch matrix of the overlay (``inf`` if unreachable)."""
        self._check_profile(profile)
        # Copy: callers historically received a fresh array they may mutate.
        return self.evaluator.set_profile(profile).stretches().copy()

    def individual_costs(self, profile: StrategyProfile) -> np.ndarray:
        """Vector of ``c_i(s)`` for all peers."""
        self._check_profile(profile)
        return self.evaluator.set_profile(profile).peer_costs()

    def cost(self, profile: StrategyProfile, peer: int) -> float:
        """Individual cost ``c_i(s)`` of one peer."""
        self._check_profile(profile)
        return self.evaluator.set_profile(profile).peer_cost(peer)

    def social_cost(self, profile: StrategyProfile) -> CostBreakdown:
        """Social cost ``C(G[s])`` split into link and stretch parts."""
        self._check_profile(profile)
        return self.evaluator.set_profile(profile).social_cost()

    # ------------------------------------------------------------------
    # Strategic reasoning
    # ------------------------------------------------------------------
    def best_response(
        self, profile: StrategyProfile, peer: int, method: str = "exact"
    ) -> br.BestResponseResult:
        """Best (or heuristic) response of ``peer`` against ``profile``."""
        self._check_profile(profile)
        return self.evaluator.set_profile(profile).best_response(peer, method)

    def find_improving_deviation(
        self, profile: StrategyProfile, peer: int
    ) -> Optional[br.BestResponseResult]:
        """Some strictly improving deviation of ``peer``, or None (exact)."""
        self._check_profile(profile)
        return self.evaluator.set_profile(profile).find_improving_deviation(
            peer
        )

    def best_responses(
        self, profile: StrategyProfile, method: str = "exact", workers: int = 1
    ) -> list:
        """Every peer's best response against ``profile`` in one sweep.

        Batched counterpart of :meth:`best_response`: one
        :meth:`~repro.core.evaluator.GameEvaluator.gain_sweep` builds all
        service matrices through blocked multi-source Dijkstra, reuses
        memoized responses when the dirty-row effect bound allows, and
        (``workers > 1``) solves the rest on a thread pool.  Results are
        identical to ``[game.best_response(profile, i, method) for i in
        range(game.n)]``.
        """
        self._check_profile(profile)
        return self.evaluator.set_profile(profile).gain_sweep(
            method, workers=workers
        )

    # ------------------------------------------------------------------
    # Convenience profiles
    # ------------------------------------------------------------------
    def empty_profile(self) -> StrategyProfile:
        """Profile with no links."""
        return StrategyProfile.empty(self.n)

    def complete_profile(self) -> StrategyProfile:
        """Profile where everybody links to everybody (stretch 1 overall)."""
        return StrategyProfile.complete(self.n)

    def random_profile(
        self, link_probability: float, seed: Optional[int] = None
    ) -> StrategyProfile:
        """Random profile with the given link density."""
        return StrategyProfile.random(self.n, link_probability, seed)

    # ------------------------------------------------------------------
    def _check_profile(self, profile: StrategyProfile) -> None:
        if profile.n != self.n:
            raise ValueError(
                f"profile has {profile.n} peers but game has {self.n}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        model = "" if self._cost_model is None else f", {self._cost_model!r}"
        return (
            f"TopologyGame(n={self.n}, alpha={self._alpha}, "
            f"metric={type(self._metric).__name__}{model})"
        )
