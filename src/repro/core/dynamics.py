"""Best-response dynamics: how selfish peers actually rewire.

Peers are activated by a scheduler; an activated peer replaces its strategy
with a (best or heuristic) response to the current profile.  The dynamics
either *converge* (a full activation round passes without any change — with
exact responses that state is a pure Nash equilibrium), *cycle* (the same
state recurs, which proves the run will never converge — Section 5 of the
paper constructs instances where this is unavoidable), or hit a step limit.

Cycle detection hashes the pair (profile, scheduler phase) after every
activation, so it is sound for deterministic schedulers.  For randomized
schedulers recurring states do not imply non-convergence, so detection is
disabled there.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.best_response import best_response as _uncached_best_response
from repro.core.game import TopologyGame
from repro.core.profile import StrategyProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.evaluator import GameEvaluator

__all__ = [
    "RoundRobinScheduler",
    "FixedOrderScheduler",
    "RandomScheduler",
    "MoveRecord",
    "CycleInfo",
    "DynamicsResult",
    "BestResponseDynamics",
]


class RoundRobinScheduler:
    """Activate peers ``0, 1, ..., n-1`` in every round (deterministic)."""

    deterministic = True

    def order(self, round_index: int, n: int) -> Sequence[int]:
        return range(n)


class FixedOrderScheduler:
    """Activate peers in a caller-supplied order in every round."""

    deterministic = True

    def __init__(self, order: Sequence[int]) -> None:
        self._order = tuple(order)

    def order(self, round_index: int, n: int) -> Sequence[int]:
        for peer in self._order:
            if not 0 <= peer < n:
                raise IndexError(f"peer {peer} out of range [0, {n})")
        return self._order


class RandomScheduler:
    """Activate peers in an independently shuffled order each round."""

    deterministic = False

    def __init__(self, seed: Optional[int] = None) -> None:
        import random

        self._rng = random.Random(seed)

    def order(self, round_index: int, n: int) -> Sequence[int]:
        order = list(range(n))
        self._rng.shuffle(order)
        return order


@dataclass(frozen=True)
class MoveRecord:
    """One strategy change performed during the dynamics."""

    step: int
    round_index: int
    peer: int
    old_strategy: Tuple[int, ...]
    new_strategy: Tuple[int, ...]
    old_cost: float
    new_cost: float

    @property
    def gain(self) -> float:
        return self.old_cost - self.new_cost


@dataclass(frozen=True)
class CycleInfo:
    """Evidence that the dynamics entered a recurring state.

    ``period`` is the number of activations between two occurrences of the
    same (profile, scheduler-phase) state; ``profiles`` lists the distinct
    profile keys visited inside one period of the cycle.
    """

    first_step: int
    period: int
    profiles: Tuple[tuple, ...]

    @property
    def num_distinct_profiles(self) -> int:
        return len(set(self.profiles))


@dataclass(frozen=True)
class DynamicsResult:
    """Outcome of a best-response dynamics run."""

    profile: StrategyProfile
    converged: bool
    stopped_reason: str
    rounds_completed: int
    steps: int
    num_moves: int
    cycle: Optional[CycleInfo]
    moves: Tuple[MoveRecord, ...]
    cost_trace: Tuple[float, ...]

    def __str__(self) -> str:
        if self.converged:
            return (
                f"converged after {self.rounds_completed} rounds "
                f"({self.num_moves} moves)"
            )
        if self.cycle is not None:
            return (
                f"cycled: period {self.cycle.period} activations, "
                f"{self.cycle.num_distinct_profiles} distinct topologies, "
                f"first hit at step {self.cycle.first_step}"
            )
        return f"stopped: {self.stopped_reason} after {self.steps} steps"


class BestResponseDynamics:
    """Engine running (best-)response dynamics on a topology game.

    Parameters
    ----------
    game:
        The topology game.
    method:
        Response solver: ``"exact"`` (true best response), ``"greedy"``
        (scalable local search) or ``"brute"`` (tiny validation runs).
        Convergence with ``"exact"`` certifies a pure Nash equilibrium;
        with ``"greedy"`` it only certifies greedy-stability.
    scheduler:
        Activation order policy; defaults to round robin.
    record_moves:
        Keep a log of every strategy change (bounded by ``max_move_log``).
    record_costs:
        Record the social cost after every round (served from the shared
        evaluator's warm stretch cache).
    evaluator:
        A :class:`~repro.core.evaluator.GameEvaluator` to share across the
        run (default: the game's shared evaluator).  Each activation then
        reuses cached service-cost matrices and overlay distances that
        survive the single-peer strategy changes the dynamics produce.
    incremental:
        Set False to bypass the evaluator entirely and recompute every
        response from scratch (reference path for validation/benchmarks).
    """

    def __init__(
        self,
        game: TopologyGame,
        method: str = "exact",
        scheduler=None,
        record_moves: bool = True,
        record_costs: bool = False,
        max_move_log: int = 100_000,
        evaluator: Optional["GameEvaluator"] = None,
        incremental: bool = True,
    ) -> None:
        self._game = game
        self._method = method
        self._scheduler = scheduler if scheduler is not None else RoundRobinScheduler()
        self._record_moves = record_moves
        self._record_costs = record_costs
        self._max_move_log = max_move_log
        self._evaluator = evaluator
        self._incremental = incremental

    def run(
        self,
        initial: Optional[StrategyProfile] = None,
        max_rounds: int = 200,
        max_steps: Optional[int] = None,
        detect_cycles: bool = True,
    ) -> DynamicsResult:
        """Run the dynamics from ``initial`` (default: the empty profile).

        Stops on convergence (one full round without a move), on a detected
        cycle (deterministic schedulers only), or on the round/step limits.
        """
        game = self._game
        profile = initial if initial is not None else game.empty_profile()
        if profile.n != game.n:
            raise ValueError(
                f"initial profile has {profile.n} peers, game has {game.n}"
            )
        detect = detect_cycles and getattr(self._scheduler, "deterministic", False)
        evaluator: Optional["GameEvaluator"] = None
        if self._incremental:
            evaluator = (
                self._evaluator if self._evaluator is not None else game.evaluator
            )
        seen: Dict[tuple, int] = {}
        trail: List[tuple] = []
        moves: List[MoveRecord] = []
        cost_trace: List[float] = []
        steps = 0
        rounds = 0
        num_moves = 0
        cycle: Optional[CycleInfo] = None
        stopped_reason = "max_rounds"

        for round_index in range(max_rounds):
            moved_this_round = False
            for peer in self._scheduler.order(round_index, game.n):
                if max_steps is not None and steps >= max_steps:
                    stopped_reason = "max_steps"
                    break
                if evaluator is not None:
                    response = evaluator.set_profile(profile).best_response(
                        peer, self._method
                    )
                else:
                    response = _uncached_best_response(
                        game.distance_matrix,
                        profile,
                        peer,
                        game.alpha,
                        self._method,
                    )
                steps += 1
                if response.improved:
                    num_moves += 1
                    if self._record_moves and len(moves) < self._max_move_log:
                        moves.append(
                            MoveRecord(
                                step=steps,
                                round_index=round_index,
                                peer=peer,
                                old_strategy=tuple(
                                    sorted(profile.strategy(peer))
                                ),
                                new_strategy=tuple(sorted(response.strategy)),
                                old_cost=response.current_cost,
                                new_cost=response.cost,
                            )
                        )
                    profile = profile.with_strategy(peer, response.strategy)
                    moved_this_round = True
                    if detect:
                        state = (profile.key(), peer)
                        if state in seen:
                            first = seen[state]
                            cycle = CycleInfo(
                                first_step=first,
                                period=steps - first,
                                profiles=tuple(
                                    key
                                    for key, marker in trail
                                    if marker >= first
                                ),
                            )
                            stopped_reason = "cycle"
                            break
                        seen[state] = steps
                        trail.append((profile.key(), steps))
            else:
                rounds += 1
                if self._record_costs:
                    if evaluator is not None:
                        cost_trace.append(
                            evaluator.set_profile(profile).social_cost().total
                        )
                    else:
                        cost_trace.append(game.social_cost(profile).total)
                if not moved_this_round:
                    stopped_reason = "converged"
                    break
                continue
            break

        converged = stopped_reason == "converged"
        return DynamicsResult(
            profile=profile,
            converged=converged,
            stopped_reason=stopped_reason,
            rounds_completed=rounds,
            steps=steps,
            num_moves=num_moves,
            cycle=cycle,
            moves=tuple(moves),
            cost_trace=tuple(cost_trace),
        )
