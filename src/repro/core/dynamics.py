"""Best-response dynamics: how selfish peers actually rewire.

Peers are activated by a scheduler; an activated peer replaces its strategy
with a (best or heuristic) response to the current profile.  The dynamics
either *converge* (a full activation round passes without any change — with
exact responses that state is a pure Nash equilibrium), *cycle* (the same
state recurs, which proves the run will never converge — Section 5 of the
paper constructs instances where this is unavoidable), or hit a step limit.

Activation batches
------------------

Schedulers emit *batches* of logically-concurrent activations per round
(:meth:`Scheduler.batches`); the classic schedulers emit singleton batches
and behave exactly as sequential activation.  A multi-peer batch — one
sub-round in the round-based scheduling model standard in distributed
computing — runs under **stale-profile semantics**:

1. every response in the batch is computed against the profile as it stood
   when the batch began (one :meth:`~repro.core.evaluator.GameEvaluator.
   gain_sweep` on the shared evaluator);
2. commits are applied in batch order; a commit that follows an earlier
   commit in the same batch is *re-checked* against the live profile and
   dropped unless the proposed strategy still strictly improves beyond
   tolerance (so stale responses can never regress a peer's cost).

Cycle detection hashes the pair (profile, scheduler phase) after every
activation — for multi-peer batches, after every batch that committed a
move, keyed by the batch's phase within the round — so it is sound for
deterministic round-invariant schedulers: recurrence of a post-move
state implies the deterministic future repeats.  For randomized
schedulers recurring states do not imply non-convergence, so detection
is disabled there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.best_response import (
    BestResponseResult,
    compute_service_costs,
    improvement_tolerance,
    strategy_cost,
)
from repro.core.best_response import best_response as _uncached_best_response
from repro.core.game import TopologyGame
from repro.core.profile import StrategyProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.evaluator import GameEvaluator

__all__ = [
    "Scheduler",
    "RoundRobinScheduler",
    "FixedOrderScheduler",
    "RandomScheduler",
    "BatchedScheduler",
    "scheduler_batches",
    "MoveRecord",
    "CycleInfo",
    "DynamicsResult",
    "BestResponseDynamics",
]


class Scheduler:
    """Base activation policy: who moves, and what moves *together*.

    Subclasses implement :meth:`order`; the default :meth:`batches` wraps
    that order into singleton batches, which is exactly the sequential
    activation model of the seed engine.  Override :meth:`batches` to
    emit multi-peer batches of logically-concurrent activations (see the
    module docstring for their stale-profile commit semantics).
    """

    #: Whether the activation sequence is a pure function of the round
    #: index (enables sound cycle detection).
    deterministic = False

    def order(self, round_index: int, n: int) -> Sequence[int]:
        raise NotImplementedError

    def batches(self, round_index: int, n: int) -> Iterator[Sequence[int]]:
        """Yield this round's activation batches (default: singletons)."""
        for peer in self.order(round_index, n):
            yield (peer,)


def scheduler_batches(
    scheduler, round_index: int, n: int
) -> Iterator[Sequence[int]]:
    """The batches a scheduler emits for one round.

    Works with any object exposing ``batches(round_index, n)`` or the
    legacy ``order(round_index, n)`` protocol (wrapped into singleton
    batches), so third-party schedulers written against the seed engine
    keep working unchanged.
    """
    batches = getattr(scheduler, "batches", None)
    if batches is not None:
        yield from batches(round_index, n)
        return
    for peer in scheduler.order(round_index, n):
        yield (peer,)


class RoundRobinScheduler(Scheduler):
    """Activate peers ``0, 1, ..., n-1`` in every round (deterministic)."""

    deterministic = True

    def order(self, round_index: int, n: int) -> Sequence[int]:
        return range(n)


class FixedOrderScheduler(Scheduler):
    """Activate peers in a caller-supplied order in every round."""

    deterministic = True

    def __init__(self, order: Sequence[int]) -> None:
        self._order = tuple(order)

    def order(self, round_index: int, n: int) -> Sequence[int]:
        for peer in self._order:
            if not 0 <= peer < n:
                raise IndexError(f"peer {peer} out of range [0, {n})")
        return self._order


class RandomScheduler(Scheduler):
    """Activate peers in an independently shuffled order each round.

    ``batch_size`` chunks each round's shuffled order into multi-peer
    batches of logically-concurrent activations (stale-profile commit
    semantics, see the module docstring); the default ``None`` keeps the
    classic singleton behavior.  The shuffle stream is identical either
    way, so ``batch_size=1`` reproduces the default exactly.
    """

    deterministic = False

    def __init__(
        self, seed: Optional[int] = None, batch_size: Optional[int] = None
    ) -> None:
        import random

        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._rng = random.Random(seed)
        self._batch_size = batch_size

    def order(self, round_index: int, n: int) -> Sequence[int]:
        order = list(range(n))
        self._rng.shuffle(order)
        return order

    def batches(self, round_index: int, n: int) -> Iterator[Sequence[int]]:
        if self._batch_size is None:
            yield from super().batches(round_index, n)
            return
        peers = list(self.order(round_index, n))
        for start in range(0, len(peers), self._batch_size):
            yield peers[start : start + self._batch_size]


class BatchedScheduler(Scheduler):
    """Activate peers in multi-peer batches of logically-concurrent moves.

    Every round covers all peers (or a caller-supplied order) chunked
    into batches of ``batch_size``; the default is one batch per round —
    the fully-synchronous sub-round model.  Responses within a batch are
    computed against the batch-start profile and committed in order with
    conflict re-checks (module docstring).

    Parameters
    ----------
    batch_size:
        Peers per batch (default: the whole population in one batch).
    order:
        Optional fixed activation order (default: ``0..n-1``).
    """

    deterministic = True

    def __init__(
        self,
        batch_size: Optional[int] = None,
        order: Optional[Sequence[int]] = None,
    ) -> None:
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._batch_size = batch_size
        self._order = tuple(order) if order is not None else None

    def order(self, round_index: int, n: int) -> Sequence[int]:
        if self._order is None:
            return range(n)
        for peer in self._order:
            if not 0 <= peer < n:
                raise IndexError(f"peer {peer} out of range [0, {n})")
        return self._order

    def batches(self, round_index: int, n: int) -> Iterator[Sequence[int]]:
        peers = list(self.order(round_index, n))
        size = self._batch_size if self._batch_size is not None else max(
            1, len(peers)
        )
        for start in range(0, len(peers), size):
            yield peers[start : start + size]


@dataclass(frozen=True)
class MoveRecord:
    """One strategy change performed during the dynamics."""

    step: int
    round_index: int
    peer: int
    old_strategy: Tuple[int, ...]
    new_strategy: Tuple[int, ...]
    old_cost: float
    new_cost: float

    @property
    def gain(self) -> float:
        return self.old_cost - self.new_cost


@dataclass(frozen=True)
class CycleInfo:
    """Evidence that the dynamics entered a recurring state.

    ``period`` is the number of activations between two occurrences of the
    same (profile, scheduler-phase) state; ``profiles`` lists the distinct
    profile keys visited inside one period of the cycle.
    """

    first_step: int
    period: int
    profiles: Tuple[tuple, ...]

    @property
    def num_distinct_profiles(self) -> int:
        return len(set(self.profiles))


@dataclass(frozen=True)
class DynamicsResult:
    """Outcome of a best-response dynamics run."""

    profile: StrategyProfile
    converged: bool
    stopped_reason: str
    rounds_completed: int
    steps: int
    num_moves: int
    cycle: Optional[CycleInfo]
    moves: Tuple[MoveRecord, ...]
    cost_trace: Tuple[float, ...]

    def __str__(self) -> str:
        if self.converged:
            return (
                f"converged after {self.rounds_completed} rounds "
                f"({self.num_moves} moves)"
            )
        if self.cycle is not None:
            return (
                f"cycled: period {self.cycle.period} activations, "
                f"{self.cycle.num_distinct_profiles} distinct topologies, "
                f"first hit at step {self.cycle.first_step}"
            )
        return f"stopped: {self.stopped_reason} after {self.steps} steps"


def batch_responses(
    game: TopologyGame,
    profile: StrategyProfile,
    batch: Sequence[int],
    method: str,
    evaluator: Optional["GameEvaluator"] = None,
    workers: int = 1,
    backend=None,
) -> List[BestResponseResult]:
    """Stale responses for one batch, all computed against ``profile``.

    With an evaluator this is one
    :meth:`~repro.core.evaluator.GameEvaluator.gain_sweep` (blocked
    service builds, effect-bound memo skips, and the solves dispatched
    through the given :mod:`~repro.core.backends` execution backend);
    without, the from-scratch reference path solves the batch peer by
    peer against the same frozen profile (``backend`` is ignored there —
    the reference path stays maximally simple).
    """
    if evaluator is not None:
        return evaluator.set_profile(profile).gain_sweep(
            method, peers=batch, workers=workers, backend=backend
        )
    return [
        _uncached_best_response(
            game.distance_matrix, profile, peer, game.alpha, method
        )
        for peer in batch
    ]


def recheck_improvement(
    game: TopologyGame,
    profile: StrategyProfile,
    response: BestResponseResult,
    evaluator: Optional["GameEvaluator"] = None,
) -> Tuple[bool, float, float]:
    """Re-score a stale response against the live (partially committed)
    profile.

    Returns ``(commit, current_cost, proposed_cost)``: the proposed
    strategy's cost and the peer's current cost under ``profile``, and
    whether the proposal still strictly improves beyond the solver's
    tolerance — the conflict re-check of stale-profile batch commits.
    """
    peer = response.peer
    if evaluator is not None:
        # The scores below read only the committed and proposed link
        # rows — narrow the repair guarantee to those so a heavily
        # dirtied matrix (late commits of a large batch) is not
        # re-solved wholesale for a two-row comparison.
        needed = sorted(set(profile.strategy(peer)) | set(response.strategy))
        service = evaluator.set_profile(profile).service_costs(
            peer, rows=needed
        )
    else:
        service = compute_service_costs(game.distance_matrix, profile, peer)
    current_cost = strategy_cost(
        service, sorted(profile.strategy(peer)), game.alpha
    )
    proposed_cost = strategy_cost(
        service, sorted(response.strategy), game.alpha
    )
    commit = proposed_cost < current_cost - improvement_tolerance(current_cost)
    return commit, current_cost, proposed_cost


class BestResponseDynamics:
    """Engine running (best-)response dynamics on a topology game.

    Parameters
    ----------
    game:
        The topology game.
    method:
        Response solver: ``"exact"`` (true best response), ``"greedy"``
        (scalable local search) or ``"brute"`` (tiny validation runs).
        Convergence with ``"exact"`` certifies a pure Nash equilibrium;
        with ``"greedy"`` it only certifies greedy-stability.
    scheduler:
        Activation policy; defaults to round robin.  Schedulers emitting
        singleton batches reproduce sequential activation exactly;
        multi-peer batches (e.g. :class:`BatchedScheduler`) run under
        stale-profile semantics: all responses in a batch are computed
        against the batch-start profile, then committed in order, each
        commit after the first re-checked against the live profile and
        dropped unless it still strictly improves.
    record_moves:
        Keep a log of every strategy change (bounded by ``max_move_log``).
    record_costs:
        Record the social cost after every round (served from the shared
        evaluator's warm stretch cache).
    evaluator:
        A :class:`~repro.core.evaluator.GameEvaluator` to share across the
        run (default: the game's shared evaluator).  Each activation then
        reuses cached service-cost matrices and overlay distances that
        survive the single-peer strategy changes the dynamics produce.
    incremental:
        Set False to bypass the evaluator entirely and recompute every
        response from scratch (reference path for validation/benchmarks).
    workers:
        Worker count for the independent response solves of a
        multi-peer batch (1 = serial; results are identical either way).
    backend:
        Execution backend for those solves — ``"serial"``, ``"thread"``,
        ``"process"``, or a :class:`~repro.core.backends.SolverBackend`
        instance (default: a thread pool when ``workers > 1``, else
        serial).  Resolved once so pools persist across rounds; the
        process backend attaches the evaluator's shared service store
        and never pickles a service matrix.  Results are identical for
        every backend.
    shards:
        When set, the dynamics own a
        :class:`~repro.core.sharded.ShardedEvaluator` with that many
        row-block shards instead of the game's shared evaluator —
        bounding resident overlay-distance memory to roughly ``1/k`` of
        the monolithic matrix.  Trajectories are identical for every
        shard count.  Mutually exclusive with ``evaluator``.
    shard_placement:
        Where that sharded evaluator's distance blocks live:
        ``"local"`` (default), ``"process"`` — one worker process per
        shard (:mod:`repro.core.shard_workers`) serving distance rows
        over a pipe — or ``"socket"`` — the same workers behind
        standalone :mod:`repro.shard_server` processes (auto-spawned
        same-host by default).  Either worker placement leaves the
        coordinator with no resident block at all.  Trajectories are
        identical for every placement.  Requires ``shards``.
    max_resident_shards:
        Resident row-block budget of the owned sharded evaluator
        (local placement; default 1).  Requires ``shards`` and must not
        exceed it.
    shard_hosts:
        Socket placement only: addresses (``"host:port"`` /
        ``"unix:/path"``) of running shard servers to round-robin
        shards across; ``None`` auto-spawns a same-host server.

    The dynamics own the sharded evaluator (and any backend resolved
    from a spec string), so they are a context manager: ``close()`` —
    or leaving the ``with`` block — tears those down deterministically.
    Externally supplied evaluators and backend *instances* are the
    caller's to close.
    """

    def __init__(
        self,
        game: TopologyGame,
        method: str = "exact",
        scheduler=None,
        record_moves: bool = True,
        record_costs: bool = False,
        max_move_log: int = 100_000,
        evaluator: Optional["GameEvaluator"] = None,
        incremental: bool = True,
        workers: int = 1,
        backend=None,
        shards: Optional[int] = None,
        shard_placement: Optional[str] = None,
        max_resident_shards: Optional[int] = None,
        shard_hosts=None,
    ) -> None:
        from repro.core.backends import SolverBackend, resolve_backend
        from repro.core.sharded import check_shard_options

        # Owned-resource slots first: close() must be a no-op on an
        # instance whose __init__ died in the validation below.
        self._owned_evaluator: Optional["GameEvaluator"] = None
        self._owns_backend = False
        self._backend = None

        check_shard_options(
            shards, shard_placement, max_resident_shards, shard_hosts
        )
        if shards is not None:
            if evaluator is not None:
                raise ValueError(
                    "pass either an evaluator or shards, not both "
                    "(a sharded evaluator is built from the shards count)"
                )
            if not incremental:
                raise ValueError(
                    "shards requires the incremental evaluator path; "
                    "incremental=False recomputes from scratch and would "
                    "silently ignore the shard count"
                )
        self._game = game
        self._method = method
        self._scheduler = scheduler if scheduler is not None else RoundRobinScheduler()
        self._record_moves = record_moves
        self._record_costs = record_costs
        self._max_move_log = max_move_log
        self._evaluator = evaluator
        self._incremental = incremental
        self._workers = max(1, int(workers))
        self._owns_backend = not isinstance(backend, SolverBackend)
        self._backend = resolve_backend(backend, self._workers)
        self._shards = shards
        self._shard_placement = shard_placement
        self._max_resident_shards = max_resident_shards
        self._shard_hosts = shard_hosts

    def _resolve_evaluator(self) -> "GameEvaluator":
        """The evaluator this run shares: explicit > sharded > game's.

        The sharded evaluator is created once and reused across ``run``
        calls so its caches (and any backend pools or shard workers
        attached to it) persist, mirroring the game's shared evaluator.
        """
        if self._evaluator is not None:
            return self._evaluator
        if self._shards is not None:
            if self._owned_evaluator is None:
                from repro.core.sharded import build_sharded_evaluator

                self._owned_evaluator = build_sharded_evaluator(
                    self._game,
                    shards=self._shards,
                    placement=self._shard_placement,
                    max_resident_shards=self._max_resident_shards,
                    shard_hosts=self._shard_hosts,
                )
            return self._owned_evaluator
        return self._game.evaluator

    def close(self) -> None:
        """Release owned resources (idempotent).

        Closes the engine-owned sharded evaluator (its stores and shard
        workers) and, when the backend was resolved from a spec string
        rather than passed as an instance, the backend's pools.  Safe
        after a failed ``__init__`` and double-close.
        """
        if self._owned_evaluator is not None:
            self._owned_evaluator.close()
            self._owned_evaluator = None
        if self._owns_backend and self._backend is not None:
            self._backend.close()

    def __enter__(self) -> "BestResponseDynamics":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(
        self,
        initial: Optional[StrategyProfile] = None,
        max_rounds: int = 200,
        max_steps: Optional[int] = None,
        detect_cycles: bool = True,
    ) -> DynamicsResult:
        """Run the dynamics from ``initial`` (default: the empty profile).

        Stops on convergence (one full round without a move), on a detected
        cycle (deterministic schedulers only), or on the round/step limits.
        Every activation — including the ones of a multi-peer batch —
        counts as one step.
        """
        game = self._game
        profile = initial if initial is not None else game.empty_profile()
        if profile.n != game.n:
            raise ValueError(
                f"initial profile has {profile.n} peers, game has {game.n}"
            )
        detect = detect_cycles and getattr(self._scheduler, "deterministic", False)
        evaluator: Optional["GameEvaluator"] = None
        if self._incremental:
            evaluator = self._resolve_evaluator()
        seen: Dict[tuple, int] = {}
        trail: List[tuple] = []
        moves: List[MoveRecord] = []
        cost_trace: List[float] = []
        steps = 0
        rounds = 0
        num_moves = 0
        cycle: Optional[CycleInfo] = None
        stopped_reason = "max_rounds"
        halted = False

        for round_index in range(max_rounds):
            moved_this_round = False
            for phase, batch in enumerate(
                scheduler_batches(self._scheduler, round_index, game.n)
            ):
                batch = list(batch)
                truncated = False
                if max_steps is not None:
                    remaining = max_steps - steps
                    if remaining <= 0:
                        stopped_reason = "max_steps"
                        halted = True
                        break
                    if len(batch) > remaining:
                        # The budget cuts this batch short: process the
                        # prefix, then stop as "max_steps" — a round that
                        # never activated every peer must not be allowed
                        # to report convergence.
                        batch = batch[:remaining]
                        truncated = True
                if len(batch) == 1:
                    # Sequential activation: identical to the seed engine.
                    peer = batch[0]
                    if evaluator is not None:
                        responses = [
                            evaluator.set_profile(profile).best_response(
                                peer, self._method
                            )
                        ]
                    else:
                        responses = [
                            _uncached_best_response(
                                game.distance_matrix,
                                profile,
                                peer,
                                game.alpha,
                                self._method,
                            )
                        ]
                else:
                    responses = batch_responses(
                        game,
                        profile,
                        batch,
                        self._method,
                        evaluator,
                        self._workers,
                        self._backend,
                    )
                base_profile = profile
                singleton = len(batch) == 1
                for peer, response in zip(batch, responses):
                    steps += 1
                    if not response.improved:
                        continue
                    old_cost = response.current_cost
                    new_cost = response.cost
                    if profile is not base_profile:
                        # An earlier commit in this batch changed the
                        # profile: the stale response must still improve.
                        commit, old_cost, new_cost = recheck_improvement(
                            game, profile, response, evaluator
                        )
                        if not commit:
                            continue
                    num_moves += 1
                    if self._record_moves and len(moves) < self._max_move_log:
                        moves.append(
                            MoveRecord(
                                step=steps,
                                round_index=round_index,
                                peer=peer,
                                old_strategy=tuple(
                                    sorted(profile.strategy(peer))
                                ),
                                new_strategy=tuple(sorted(response.strategy)),
                                old_cost=old_cost,
                                new_cost=new_cost,
                            )
                        )
                    profile = profile.with_strategy(peer, response.strategy)
                    moved_this_round = True
                    if detect and singleton:
                        state = (profile.key(), peer)
                        if state in seen:
                            first = seen[state]
                            cycle = CycleInfo(
                                first_step=first,
                                period=steps - first,
                                profiles=tuple(
                                    key
                                    for key, marker in trail
                                    if marker >= first
                                ),
                            )
                            stopped_reason = "cycle"
                            halted = True
                            break
                        seen[state] = steps
                        trail.append((profile.key(), steps))
                if (
                    not halted
                    and detect
                    and not singleton
                    and profile is not base_profile
                ):
                    # Multi-peer batches are detected at batch boundaries:
                    # mid-batch states are meaningless (pending stale
                    # responses belong to the batch-start profile), but a
                    # recurring *post-move* batch state keyed by its phase
                    # pins the whole deterministic future.
                    state = (profile.key(), ("batch", phase))
                    if state in seen:
                        first = seen[state]
                        cycle = CycleInfo(
                            first_step=first,
                            period=steps - first,
                            profiles=tuple(
                                key
                                for key, marker in trail
                                if marker >= first
                            ),
                        )
                        stopped_reason = "cycle"
                        halted = True
                    else:
                        seen[state] = steps
                        trail.append((profile.key(), steps))
                if truncated and not halted:
                    stopped_reason = "max_steps"
                    halted = True
                if halted:
                    break
            if halted:
                break
            rounds += 1
            if self._record_costs:
                if evaluator is not None:
                    cost_trace.append(
                        evaluator.set_profile(profile).social_cost().total
                    )
                else:
                    cost_trace.append(game.social_cost(profile).total)
            if not moved_this_round:
                stopped_reason = "converged"
                break

        converged = stopped_reason == "converged"
        return DynamicsResult(
            profile=profile,
            converged=converged,
            stopped_reason=stopped_reason,
            rounds_completed=rounds,
            steps=steps,
            num_moves=num_moves,
            cycle=cycle,
            moves=tuple(moves),
            cost_trace=tuple(cost_trace),
        )
