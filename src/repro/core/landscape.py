"""Small-``n`` equilibrium-landscape explorer: the cost models' oracle.

Where :mod:`repro.core.exhaustive` answers *which profiles are Nash* and
:mod:`repro.core.response_graph` answers *where dynamics can end up*, this
module combines them into a per-instance **landscape**: every equilibrium
together with the size of its basin of attraction under deterministic
first-improving-peer dynamics, the exact social optimum, and the resulting
Price of Anarchy / Stability — all priced under a pluggable
:class:`~repro.core.cost_model.CostModel`.

Two modes:

* ``"exact"`` (``n <= MAX_EXHAUSTIVE_PEERS``): the full best-response
  successor table is collapsed to a functional graph (each profile steps
  to its lowest-indexed improving peer's best response) and iterated by
  pointer doubling, so every one of the ``2^(n(n-1))`` profiles is
  attributed to the sink it reaches — or to cycling mass when it falls
  into an attractor cycle.  The sink set is cross-validated against
  :func:`~repro.core.exhaustive.exhaustive_equilibria` and certified by
  :func:`~repro.core.equilibrium.verify_nash`; a mismatch raises
  :class:`LandscapeValidationError` rather than returning silently wrong
  results.
* ``"sampled"`` (larger ``n``, where ``2^(n(n-1))`` is out of reach):
  exact best-response dynamics from varied starts (empty, complete,
  seeded random), every reached fixpoint certified by ``verify_nash``.
  Basin fractions are start fractions and the Price of Anarchy is a
  *witnessed lower bound* (over :func:`optimum_upper_bound`'s achieved
  OPT), honestly recorded via ``mode``.

Tolerance note: the exact mode's sink set provably equals the exhaustive
Nash set.  The successor table keeps the status quo unless the best
response beats it by ``rtol * max(1, |best|)`` while the exhaustive check
accepts ``cost <= best * (1 + rtol)`` — but for ``n >= 2`` every peer's
best achievable cost is at least ``n - 1 >= 1`` (each of the ``n - 1``
stretches is at least 1), so ``max(1, |best|) == best`` and the two
tie-break rules coincide exactly.  The cross-validation asserts this
rather than assuming it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.cost_model import CostModel, resolve_cost_model
from repro.core.exhaustive import (
    MAX_EXHAUSTIVE_PEERS,
    decode_profile,
    encode_profile,
    exhaustive_equilibria,
    profile_costs_batch,
)
from repro.core.game import TopologyGame
from repro.core.profile import StrategyProfile
from repro.core.response_graph import best_response_moves

__all__ = [
    "EquilibriumBasin",
    "LandscapeResult",
    "LandscapeValidationError",
    "explore_landscape",
]


class LandscapeValidationError(RuntimeError):
    """The sink set disagreed with the exact solver's equilibrium set."""


@dataclass(frozen=True)
class EquilibriumBasin:
    """One equilibrium of the landscape and the mass that flows into it.

    Attributes
    ----------
    profile_id:
        Encoded profile id (see :func:`repro.core.exhaustive.encode_profile`).
    social_cost:
        Social cost under the landscape's cost model.
    basin_fraction:
        Exact mode: fraction of all ``2^(n(n-1))`` profiles whose
        deterministic first-improving-peer trajectory ends here.  Sampled
        mode: fraction of dynamics starts that converged here.
    nash_certified:
        True when :func:`~repro.core.equilibrium.verify_nash` certified
        this profile on the real game (always attempted up to the
        explorer's ``certify_limit``).
    """

    profile_id: int
    social_cost: float
    basin_fraction: float
    nash_certified: bool

    def profile(self, n: int) -> StrategyProfile:
        """Decode the equilibrium profile."""
        return decode_profile(self.profile_id, n)


@dataclass(frozen=True)
class LandscapeResult:
    """The equilibrium landscape of one game instance under one cost model.

    Attributes
    ----------
    n / alpha / cost_model_spec:
        Instance parameters (``cost_model_spec`` is ``None`` for the
        paper's unilateral game).
    mode:
        ``"exact"`` (full enumeration, cross-validated) or ``"sampled"``
        (dynamics from varied starts, per-equilibrium certified).
    num_sources:
        How many trajectory sources the basin fractions are over: all
        ``2^(n(n-1))`` profiles in exact mode, the number of dynamics
        starts in sampled mode.
    equilibria:
        One :class:`EquilibriumBasin` per equilibrium, sorted by id.
    cycling_fraction:
        Source mass **not** absorbed by any equilibrium (caught in an
        attractor cycle / non-converged run).  ``1.0`` with empty
        ``equilibria`` is the Theorem 5.1 landscape.
    optimum_social_cost / optimum_profile_id:
        Exact mode: the model-priced exact OPT over all profiles.
        Sampled mode: the best *achieved* upper bound (a witness, not the
        true OPT).
    price_of_anarchy / price_of_stability:
        Worst / best equilibrium social cost over ``optimum_social_cost``
        (``None`` when no equilibrium was found).  Exact in exact mode; a
        witnessed lower bound in sampled mode (true PoA can only be
        larger: the numerator maximizes over a subset of equilibria and
        the denominator overestimates OPT).
    cross_validated:
        True when the sink set was checked against
        :func:`~repro.core.exhaustive.exhaustive_equilibria` (exact mode
        only; sampled mode certifies per-equilibrium instead).
    """

    n: int
    alpha: float
    cost_model_spec: Optional[Tuple]
    mode: str
    num_sources: int
    equilibria: Tuple[EquilibriumBasin, ...]
    cycling_fraction: float
    optimum_social_cost: float
    optimum_profile_id: int
    price_of_anarchy: Optional[float]
    price_of_stability: Optional[float]
    cross_validated: bool

    @property
    def has_equilibrium(self) -> bool:
        return len(self.equilibria) > 0

    @property
    def num_equilibria(self) -> int:
        return len(self.equilibria)

    @property
    def all_certified(self) -> bool:
        """True when every reported equilibrium is verify_nash-certified."""
        return all(basin.nash_certified for basin in self.equilibria)

    def worst_equilibrium(self) -> Optional[EquilibriumBasin]:
        """The PoA numerator's witness (``None`` without equilibria)."""
        if not self.equilibria:
            return None
        return max(self.equilibria, key=lambda basin: basin.social_cost)


def _instance_game(
    distance_matrix: np.ndarray, alpha: float, cost_model: Optional[CostModel]
) -> TopologyGame:
    """A real game over the matrix, for certification and dynamics."""
    from repro.metrics.matrix import DistanceMatrixMetric

    return TopologyGame(
        DistanceMatrixMetric(distance_matrix, validate=False),
        alpha,
        cost_model=cost_model,
    )


def _certified(
    game: TopologyGame, profile_ids: List[int], certify_limit: int
) -> List[bool]:
    """verify_nash each decoded profile (False beyond ``certify_limit``)."""
    from repro.core.equilibrium import verify_nash

    flags: List[bool] = []
    for index, pid in enumerate(profile_ids):
        if index >= certify_limit:
            flags.append(False)
            continue
        profile = decode_profile(pid, game.n)
        flags.append(verify_nash(game, profile).is_nash)
    return flags


def _exact_landscape(
    dmat: np.ndarray,
    alpha: float,
    cost_model: Optional[CostModel],
    chunk_size: int,
    certify_limit: int,
) -> LandscapeResult:
    model_spec = None if cost_model is None else cost_model.spec()
    n = dmat.shape[0]
    moves = best_response_moves(dmat, alpha, chunk_size=chunk_size)
    num_profiles = moves.shape[0]
    all_ids = np.arange(num_profiles, dtype=np.int64)

    # Deterministic functional dynamics: each profile steps to the best
    # response of its lowest-indexed improving peer (sinks stay put).
    improving = moves != all_ids[:, None]
    any_improving = improving.any(axis=1)
    first_peer = improving.argmax(axis=1)
    successor = np.where(
        any_improving, moves[all_ids, first_peer], all_ids
    ).astype(np.int64)
    is_sink = ~any_improving

    # Pointer doubling: after k squarings dest == successor^(2^k), and the
    # longest sink-bound transient is < num_profiles, so ceil(log2) + 1
    # squarings land every absorbed profile exactly on its sink.  Profiles
    # feeding an attractor cycle end up *somewhere on* the cycle — never a
    # sink — which is precisely the cycling-mass test below.
    dest = successor
    for _ in range(max(1, math.ceil(math.log2(max(2, num_profiles)))) + 1):
        dest = dest[dest]

    absorbed = is_sink[dest]
    cycling_fraction = 1.0 - float(absorbed.mean())
    sink_ids = [int(x) for x in np.nonzero(is_sink)[0]]
    basin_counts = np.bincount(dest[absorbed], minlength=num_profiles)

    # Model-priced social cost of every profile (per-peer costs from
    # profile_costs_batch already include the model's per-peer term, so
    # their sum is social_cost().total including social_extra).
    social = np.empty(num_profiles)
    for start in range(0, num_profiles, chunk_size):
        stop = min(start + chunk_size, num_profiles)
        ids = np.arange(start, stop, dtype=np.int64)
        social[start:stop] = profile_costs_batch(
            ids, dmat, alpha, cost_model=cost_model
        ).sum(axis=1)
    optimum_profile_id = int(np.argmin(social))
    optimum = float(social[optimum_profile_id])

    # Cross-validation against the independent exact solver.
    exact = exhaustive_equilibria(
        dmat, alpha, chunk_size=chunk_size, cost_model=cost_model
    )
    if set(sink_ids) != set(exact.equilibrium_ids):
        raise LandscapeValidationError(
            f"sink set {sorted(sink_ids)} disagrees with exhaustive "
            f"equilibria {sorted(exact.equilibrium_ids)} (n={n}, "
            f"alpha={alpha}, model={model_spec})"
        )
    if not math.isclose(
        optimum, exact.best_social_cost, rel_tol=1e-12, abs_tol=1e-12
    ):
        raise LandscapeValidationError(
            f"landscape OPT {optimum!r} disagrees with exhaustive OPT "
            f"{exact.best_social_cost!r} (n={n}, alpha={alpha}, "
            f"model={model_spec})"
        )

    game = _instance_game(dmat, alpha, cost_model)
    certified = _certified(game, sink_ids, certify_limit)
    basins = tuple(
        EquilibriumBasin(
            profile_id=pid,
            social_cost=float(social[pid]),
            basin_fraction=float(basin_counts[pid]) / num_profiles,
            nash_certified=flag,
        )
        for pid, flag in zip(sink_ids, certified)
    )
    poa = pos = None
    if basins and optimum > 0:
        poa = max(basin.social_cost for basin in basins) / optimum
        pos = min(basin.social_cost for basin in basins) / optimum
    return LandscapeResult(
        n=n,
        alpha=alpha,
        cost_model_spec=model_spec,
        mode="exact",
        num_sources=num_profiles,
        equilibria=basins,
        cycling_fraction=cycling_fraction,
        optimum_social_cost=optimum,
        optimum_profile_id=optimum_profile_id,
        price_of_anarchy=poa,
        price_of_stability=pos,
        cross_validated=True,
    )


def _sampled_landscape(
    dmat: np.ndarray,
    alpha: float,
    cost_model: Optional[CostModel],
    num_samples: int,
    seed: int,
    max_rounds: int,
    certify_limit: int,
) -> LandscapeResult:
    from repro.core.dynamics import BestResponseDynamics, RandomScheduler
    from repro.core.social_optimum import optimum_upper_bound

    model_spec = None if cost_model is None else cost_model.spec()
    n = dmat.shape[0]
    game = _instance_game(dmat, alpha, cost_model)

    starts: List[StrategyProfile] = [game.empty_profile()]
    if n <= 64:
        starts.append(game.complete_profile())
    while len(starts) < num_samples:
        starts.append(
            game.random_profile(
                min(0.5, 4.0 / max(1, n)), seed=seed + len(starts)
            )
        )

    hits: dict = {}
    cycling = 0
    for index, start in enumerate(starts[:num_samples]):
        dynamics = BestResponseDynamics(
            game,
            method="exact",
            scheduler=RandomScheduler(seed * 7919 + index),
            record_moves=False,
        )
        result = dynamics.run(initial=start, max_rounds=max_rounds)
        if result.converged:
            hits[encode_profile(result.profile)] = (
                hits.get(encode_profile(result.profile), 0) + 1
            )
        else:
            cycling += 1

    sink_ids = sorted(hits)
    certified = _certified(game, sink_ids, certify_limit)
    num_sources = len(starts[:num_samples])
    basins = tuple(
        EquilibriumBasin(
            profile_id=pid,
            social_cost=game.social_cost(decode_profile(pid, n)).total,
            basin_fraction=hits[pid] / num_sources,
            nash_certified=flag,
        )
        for pid, flag in zip(sink_ids, certified)
    )
    optimum_estimate = optimum_upper_bound(game)
    optimum = float(optimum_estimate.upper)
    optimum_profile_id = encode_profile(optimum_estimate.profile)
    poa = pos = None
    if basins and optimum > 0:
        poa = max(basin.social_cost for basin in basins) / optimum
        pos = min(basin.social_cost for basin in basins) / optimum
    return LandscapeResult(
        n=n,
        alpha=alpha,
        cost_model_spec=model_spec,
        mode="sampled",
        num_sources=num_sources,
        equilibria=basins,
        cycling_fraction=cycling / num_sources,
        optimum_social_cost=optimum,
        optimum_profile_id=optimum_profile_id,
        price_of_anarchy=poa,
        price_of_stability=pos,
        cross_validated=False,
    )


def explore_landscape(
    distance_matrix: np.ndarray,
    alpha: float,
    cost_model: Optional[CostModel] = None,
    mode: str = "auto",
    chunk_size: int = 1 << 13,
    num_samples: int = 32,
    seed: int = 0,
    max_rounds: int = 200,
    certify_limit: int = 64,
) -> LandscapeResult:
    """Map the equilibrium landscape of one instance under one cost model.

    Parameters
    ----------
    distance_matrix:
        Dense metric distance matrix, shape ``(n, n)``.
    alpha:
        Link-cost parameter.
    cost_model:
        Optional :class:`~repro.core.cost_model.CostModel`; must carry the
        same ``alpha``.  ``None`` prices the paper's unilateral game.
    mode:
        ``"exact"``, ``"sampled"``, or ``"auto"`` (exact when ``n <=
        MAX_EXHAUSTIVE_PEERS``, sampled otherwise).
    chunk_size:
        Profiles per vectorized batch in exact mode.
    num_samples / seed / max_rounds:
        Sampled mode: number of dynamics starts, base seed, and per-run
        round limit.
    certify_limit:
        Upper bound on equilibria run through ``verify_nash`` (the rest
        report ``nash_certified=False``; exact mode's cross-validation
        still covers them).
    """
    cost_model = resolve_cost_model(cost_model, alpha)
    dmat = np.asarray(distance_matrix, dtype=float)
    n = dmat.shape[0]
    if dmat.shape != (n, n):
        raise ValueError(f"distance matrix must be square, got {dmat.shape}")
    if mode == "auto":
        mode = "exact" if n <= MAX_EXHAUSTIVE_PEERS else "sampled"
    if mode == "exact":
        if n > MAX_EXHAUSTIVE_PEERS:
            raise ValueError(
                f"exact mode supports n <= {MAX_EXHAUSTIVE_PEERS}, got {n}"
            )
        if n <= 1:
            return LandscapeResult(
                n=n,
                alpha=alpha,
                cost_model_spec=(
                    None if cost_model is None else cost_model.spec()
                ),
                mode="exact",
                num_sources=1,
                equilibria=(
                    EquilibriumBasin(
                        profile_id=0,
                        social_cost=0.0,
                        basin_fraction=1.0,
                        nash_certified=True,
                    ),
                ),
                cycling_fraction=0.0,
                optimum_social_cost=0.0,
                optimum_profile_id=0,
                price_of_anarchy=None,
                price_of_stability=None,
                cross_validated=True,
            )
        return _exact_landscape(
            dmat, alpha, cost_model, chunk_size, certify_limit
        )
    if mode == "sampled":
        return _sampled_landscape(
            dmat,
            alpha,
            cost_model,
            num_samples,
            seed,
            max_rounds,
            certify_limit,
        )
    raise ValueError(f"unknown landscape mode {mode!r}")
