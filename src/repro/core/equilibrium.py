"""Nash-equilibrium verification and search.

A profile is a (pure) Nash equilibrium when no peer has a unilateral
improving deviation.  Verification here is *certified*: the result either
states that the exact search proved no deviation exists, or it carries the
concrete improving deviations that were found (peer, new strategy, old and
new cost) so that claims in tests and experiments are reproducible
artifacts rather than booleans.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence

from repro.core.best_response import BestResponseResult
from repro.core.game import TopologyGame
from repro.core.profile import StrategyProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.evaluator import GameEvaluator

__all__ = [
    "NashCertificate",
    "verify_nash",
    "enumerate_profiles",
    "find_equilibria_exhaustive",
    "best_response_closure",
]


@dataclass(frozen=True)
class NashCertificate:
    """Result of Nash verification for one profile.

    Attributes
    ----------
    is_nash:
        True when no peer has an improving unilateral deviation.
    deviations:
        Witnessed improving deviations (empty when ``is_nash``).  When
        verification ran with ``first_only=True`` this holds at most one
        entry even if several peers could deviate.
    checked_peers:
        How many peers were examined (== n when ``is_nash``).
    """

    is_nash: bool
    deviations: tuple
    checked_peers: int

    @property
    def first_deviation(self) -> Optional[BestResponseResult]:
        """The first witnessed deviation, if any."""
        return self.deviations[0] if self.deviations else None


def verify_nash(
    game: TopologyGame,
    profile: StrategyProfile,
    first_only: bool = True,
    peers: Optional[Sequence[int]] = None,
    evaluator: Optional["GameEvaluator"] = None,
) -> NashCertificate:
    """Exactly verify whether ``profile`` is a pure Nash equilibrium.

    Parameters
    ----------
    game:
        The topology game.
    profile:
        The profile to verify.
    first_only:
        Stop at the first improving deviation (default).  With False, one
        deviation per deviating peer is collected (each peer's *first*
        improving move found, not necessarily its best response).
    peers:
        Restrict the check to these peers (default: all).  Restricting is
        useful for cluster-symmetric instances where a representative per
        equivalence class suffices.
    evaluator:
        Evaluator whose warm caches to use (default: the game's shared
        one).  All per-peer checks then share one overlay build and any
        still-valid service-cost matrices.
    """
    deviations: List[BestResponseResult] = []
    to_check = list(range(game.n)) if peers is None else list(peers)
    if evaluator is None:
        evaluator = game.evaluator
    evaluator.set_profile(profile)
    checked = 0
    for peer in to_check:
        deviation = evaluator.find_improving_deviation(peer)
        checked += 1
        if deviation is not None:
            deviations.append(deviation)
            if first_only:
                break
    return NashCertificate(
        is_nash=not deviations,
        deviations=tuple(deviations),
        checked_peers=checked,
    )


def enumerate_profiles(n: int) -> Iterator[StrategyProfile]:
    """Yield every strategy profile on ``n`` peers.

    There are ``2^(n-1)`` strategies per peer and ``2^(n(n-1))`` profiles,
    so this is only feasible for very small ``n``; it exists to make
    exhaustive claims ("this game has no pure Nash equilibrium") checkable
    on toy instances.
    """
    if n == 0:
        yield StrategyProfile.empty(0)
        return
    per_peer: List[List[frozenset]] = []
    for i in range(n):
        others = [j for j in range(n) if j != i]
        strategies = [
            frozenset(combo)
            for size in range(0, len(others) + 1)
            for combo in itertools.combinations(others, size)
        ]
        per_peer.append(strategies)
    for combination in itertools.product(*per_peer):
        yield StrategyProfile(list(combination))


def find_equilibria_exhaustive(
    game: TopologyGame,
    max_profiles: int = 2_000_000,
    require_connected: bool = True,
) -> List[StrategyProfile]:
    """All pure Nash equilibria of a tiny game by full enumeration.

    ``require_connected`` skips profiles with infinite social cost before
    running verification (they can never be equilibria for ``n >= 2``
    because an isolated peer always benefits from linking up, and pruning
    them early saves most of the work).
    """
    n = game.n
    num_profiles = 2 ** (n * (n - 1)) if n > 1 else 1
    if num_profiles > max_profiles:
        raise ValueError(
            f"exhaustive search over {num_profiles} profiles exceeds "
            f"max_profiles={max_profiles}; reduce n or raise the limit"
        )
    equilibria = []
    for profile in enumerate_profiles(n):
        if require_connected and n > 1:
            from repro.graphs.reachability import is_strongly_connected

            if not is_strongly_connected(game.overlay(profile)):
                continue
        if verify_nash(game, profile).is_nash:
            equilibria.append(profile)
    return equilibria


def best_response_closure(
    game: TopologyGame,
    profile: StrategyProfile,
    max_steps: int = 10_000,
    method: str = "exact",
) -> StrategyProfile:
    """Iterate best responses until a fixpoint or step limit.

    A thin convenience wrapper over one round-robin sweep logic; the fully
    featured engine (schedulers, cycle detection, history) lives in
    :mod:`repro.core.dynamics`.  Raises ``RuntimeError`` when no fixpoint
    is reached within the step limit, because callers of a *closure* expect
    an equilibrium.
    """
    from repro.core.dynamics import BestResponseDynamics

    result = BestResponseDynamics(game, method=method).run(
        initial=profile, max_steps=max_steps
    )
    if not result.converged:
        raise RuntimeError(
            f"best-response closure did not converge within {max_steps} "
            f"steps (cycle detected: {result.cycle is not None})"
        )
    return result.profile
