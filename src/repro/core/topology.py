"""Building overlay topologies ``G[s]`` from strategy profiles.

The overlay induced by a profile is the directed graph with an edge
``i -> j`` of weight ``d(i, j)`` for every link ``j ∈ s_i``.
"""

from __future__ import annotations

import numpy as np

from repro.core.profile import StrategyProfile
from repro.graphs.digraph import WeightedDigraph
from repro.metrics.base import MetricSpace

__all__ = ["build_overlay", "overlay_from_matrix"]


def overlay_from_matrix(
    distance_matrix: np.ndarray, profile: StrategyProfile
) -> WeightedDigraph:
    """Overlay graph of ``profile`` weighted by a dense distance matrix."""
    n = profile.n
    if distance_matrix.shape != (n, n):
        raise ValueError(
            f"distance matrix shape {distance_matrix.shape} does not match "
            f"profile with {n} peers"
        )
    graph = WeightedDigraph(n)
    for i, j in profile.edges():
        graph.add_edge(i, j, float(distance_matrix[i, j]))
    return graph


def build_overlay(
    metric: MetricSpace, profile: StrategyProfile
) -> WeightedDigraph:
    """Overlay graph ``G[s]`` of ``profile`` over ``metric``."""
    if metric.n != profile.n:
        raise ValueError(
            f"metric has {metric.n} points but profile has {profile.n} peers"
        )
    return overlay_from_matrix(metric.distance_matrix(), profile)
