"""Shared incremental evaluation layer for the topology game.

Every strategic question this library asks — individual and social costs,
Nash verification, best responses, and the O(n^2) single-link flips of
better-response dynamics — is a function of two expensive artifacts:

* the all-pairs distance matrix of the overlay ``G[s]``, and
* per-peer *service-cost* matrices ``W_i`` (see
  :mod:`repro.core.best_response`), where ``W_i[u, j]`` prices reaching
  target ``j`` through first hop ``u`` in ``H_i = G[s]`` minus ``i``'s
  out-edges.

Historically each layer recomputed these from scratch: ``social_cost``
rebuilt the overlay and reran all-pairs Dijkstra, and
``find_improving_flip`` ran one Dijkstra *per candidate flip* —
O(n^3 log n) work per activation.  :class:`GameEvaluator` memoizes both
artifacts against a bound :class:`~repro.core.profile.StrategyProfile`
and keeps them warm across an entire dynamics run.

Caching / invalidation contract
-------------------------------

The evaluator is bound to one profile at a time via :meth:`set_profile`.
Queries (:meth:`social_cost`, :meth:`peer_costs`, :meth:`service_costs`,
:meth:`best_response`, :meth:`find_improving_flip`, ...) are pure with
respect to the bound profile and populate caches lazily.

When ``set_profile`` receives a profile that differs from the bound one
in **exactly one** peer's strategy (the shape every dynamics step
produces), invalidation is incremental and exploits two structural facts:

1. Changing peer ``p``'s out-edges cannot change any distance *from* a
   node ``u`` that cannot reach ``p``: a path from ``u`` visits ``p``
   only if ``u`` reaches ``p``, and reachability *to* ``p`` is itself
   independent of ``p``'s out-edges.  So only rows of the overlay
   distance matrix (and of cached ``W_i``) whose source reaches ``p``
   are dirtied; all other rows are reused verbatim.  Dirty rows are
   recomputed lazily by a multi-source Dijkstra over just those sources,
   which is bitwise identical to a full recompute because per-source
   runs are independent.
2. ``W_p`` is built on ``H_p = G[s]`` minus ``p``'s own out-edges, so it
   is *entirely unaffected* by ``p`` changing strategy and survives the
   move untouched.  This is why a whole better-response activation needs
   at most one fresh multi-source Dijkstra.

Any other rebind (multi-peer diff, different ``n``) resets all caches.
Mutating a profile object is impossible (profiles are immutable).  Cached
service matrices are handed out with their ``weights`` arrays marked
read-only (they are live cache entries, repaired in place on rebinds);
:attr:`overlay` is the one mutable object exposed and callers must treat
it as read-only.

The batch flip API (:meth:`find_improving_flip`) scores every drop, add
and swap of a peer from its single ``W`` matrix with numpy reductions —
no per-candidate shortest-path work at all — turning better-response
activation from O(n^3 log n) into O(n^2)-ish amortized work.

Batched activation rounds
-------------------------

Two batch APIs serve whole scheduler rounds of logically-concurrent
activations.  :meth:`batch_service_costs` builds/repairs many peers'
service matrices through one block-diagonal multi-source Dijkstra per
budgeted chunk (:func:`~repro.graphs.shortest_paths.
blocked_multi_source_distances`) — values are bitwise identical to the
per-peer calls, only the call count changes.  :meth:`gain_sweep` returns
every peer's current best response from one such pass plus a *response
memo*: each repair accumulates, per target column, an upper bound on how
much any strategy's column minimum can have decreased (``dec_cum``), and
:meth:`best_response` returns the memoized response without re-solving
whenever the matrix is bit-identical (sound for any deterministic
solver) or — for exact methods — the effect bound proves the stored
optimum cannot have been overtaken.  ``gain_sweep(workers=N)``
dispatches the remaining (independent, read-only) solver calls to a
thread pool; results are identical for any worker count.

The evaluator rebinds and repairs caches in place and is **not**
thread-safe across concurrent queries; the worker pools driven by
``gain_sweep`` are safe because all cache mutation happens before and
after the parallel section.

Service stores and execution backends
-------------------------------------

Where the cached ``W`` matrices *live* is pluggable
(:mod:`repro.core.service_store`): the default ``store="memory"`` keeps
plain ndarrays (the historical behavior), ``store="shared"`` moves every
matrix into a :mod:`multiprocessing.shared_memory` segment, and
``store="spill"`` (or a configured ``SpillStore``) bounds the resident
RAM copies to a byte budget, spilling cold matrices to a memory-mapped
file with LRU promotion.  Stores move bytes without changing them, so
every query is bit-identical across stores.

How a sweep's response solves *execute* is equally pluggable
(:mod:`repro.core.backends`): ``gain_sweep(backend=...)`` accepts
``"serial"``/``"thread"``/``"process"`` or a
:class:`~repro.core.backends.SolverBackend` instance.  The process
backend requires (and auto-migrates to) a shareable store: pool workers
receive ``(store_handle, peer, strategy, digest)`` tasks and attach the
store's segments/windows directly — the matrices are never pickled, and
in-place repairs between sweeps are visible to long-lived workers
through the shared mappings.  All backends run the same pure solver on
the same bytes, so trajectories are identical for any backend and any
worker count.

For populations where even the ``n x n`` overlay-distance matrix is too
large to hold, :class:`~repro.core.sharded.ShardedEvaluator` partitions
the peer space into row-block shards — each with its own distance-row
slice and its own service store — behind this same interface (see
``docs/architecture.md`` for the full walkthrough).

Equivalence with the naive paths: candidate enumeration order and
tie-breaking mirror the reference implementations, and the two agree
exactly whenever no two candidates are *mathematically* tied.  The
cached and naive paths accumulate floating-point sums in different
orders (``min_u (d(i,u) + d_H(u,j))`` versus a single Dijkstra over
``G``), so on degenerate instances with exactly tied candidates — e.g.
coincident peers — the two may break the tie differently.  Both picks
are then optimal and of equal cost, but dynamics trajectories can
diverge; the trajectory-identity guarantee holds for instances without
such ties (random Euclidean/ring instances in particular).
"""

from __future__ import annotations

import dataclasses
import math
import weakref
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.core.backends import SolverBackend, resolve_backend
from repro.core.best_response import (
    BestResponseResult,
    ServiceCosts,
    best_response_from_service,
    improvement_tolerance,
    improving_deviation_from_service,
    normalize_service_rows,
    service_cost_rows,
    service_costs_from_overlay,
    strategy_cost,
)
from repro.core.costs import (
    CostBreakdown,
    individual_costs_from_stretch,
    social_cost_from_stretch,
    stretch_from_distances,
)
from repro.core.profile import StrategyProfile
from repro.core.service_store import SharedMemoryStore, make_store
from repro.core.topology import overlay_from_matrix
from repro.graphs.digraph import WeightedDigraph
from repro.graphs.dynamic_sssp import RowRepairer
from repro.graphs.shortest_paths import (
    blocked_multi_source_distances,
    multi_source_distances,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.game import TopologyGame

__all__ = ["EvaluatorStats", "GameEvaluator"]

_RELATIVE_TOLERANCE = 1e-9


@dataclass
class EvaluatorStats:
    """Counters describing how much work the caches saved.

    ``service_rows_reused`` counts candidate rows served from cache when a
    service matrix was revalidated; ``service_rows_recomputed`` counts the
    rows that actually went back through Dijkstra.  ``response_memo_hits``
    counts best-response queries answered from the memoized response (the
    dirty-row effect bound proved the response cannot have changed), while
    ``response_solves`` counts queries that went to the solver.
    ``batch_calls`` counts :meth:`GameEvaluator.batch_service_costs`
    invocations that issued at least one blocked Dijkstra.

    The ``store_*`` counters are maintained by the bound service store
    (:mod:`repro.core.service_store`): ``store_resident_bytes`` /
    ``store_resident_peak_bytes`` track the RAM held by matrix copies
    right now / at the high-water mark, and ``store_promotions`` /
    ``store_demotions`` count spill-file round-trips.  For the plain
    in-memory store, promotions and demotions stay 0 and resident bytes
    equal the cache size.

    The ``distance_resident_*`` counters track the RAM held by cached
    overlay-distance rows right now / at the high-water mark: the full
    ``n x n`` matrix for :class:`GameEvaluator`, the currently-resident
    row blocks for :class:`~repro.core.sharded.ShardedEvaluator` (which
    also counts ``distance_block_builds`` / ``distance_block_releases``
    — full rebuilds and evictions of one shard's row block; both stay 0
    on the unsharded evaluator).

    Under dynamic repair (``dynamic_repair=True``, the default) dirty
    rows are patched in place by :mod:`repro.graphs.dynamic_sssp` rather
    than re-solved: ``distance_vertices_repaired`` counts the vertices
    actually recomputed or decreased across all repaired rows (overlay
    and raw service rows alike), and ``distance_full_fallbacks`` counts
    rows whose affected frontier blew the fallback threshold and went
    back through scratch Dijkstra.  ``distance_rows_recomputed`` keeps
    its historical meaning — dirty rows brought up to date — whichever
    path repaired them.  ``service_dirty_noncandidates`` counts dirty
    sources dropped from service repairs because they are not candidate
    rows of that matrix (only the peer itself can be dropped this way;
    anything else would be an invalidation-coverage bug).
    """

    full_resets: int = 0
    incremental_rebinds: int = 0
    service_full_builds: int = 0
    service_cache_hits: int = 0
    service_rows_recomputed: int = 0
    service_rows_reused: int = 0
    service_partial_repairs: int = 0
    service_dirty_noncandidates: int = 0
    distance_full_builds: int = 0
    distance_rows_recomputed: int = 0
    distance_vertices_repaired: int = 0
    distance_full_fallbacks: int = 0
    distance_block_builds: int = 0
    distance_block_releases: int = 0
    distance_resident_bytes: int = 0
    distance_resident_peak_bytes: int = 0
    batch_calls: int = 0
    gain_sweeps: int = 0
    response_solves: int = 0
    response_memo_hits: int = 0
    store_promotions: int = 0
    store_demotions: int = 0
    store_resident_bytes: int = 0
    store_resident_peak_bytes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)

    def account_distance(self, delta: int) -> None:
        """Move resident overlay-distance bytes by ``delta`` (track peak).

        Shared by the unsharded evaluator (full-matrix builds/resets)
        and the sharded distance manager (block builds/releases) so the
        peak semantics the e15 benchmark asserts on live in one place.
        """
        self.distance_resident_bytes += delta
        if self.distance_resident_bytes > self.distance_resident_peak_bytes:
            self.distance_resident_peak_bytes = self.distance_resident_bytes


@dataclass
class _ResponseMemo:
    """A solved response, reusable while the effect bound holds.

    ``cost`` is the solver's achieved value for ``strategy`` against the
    service matrix as it stood when the memo was stored; the entry's
    ``dec_cum``/``changed_since_memo`` trackers measure how far the matrix
    has drifted since then.
    """

    method: str
    strategy: FrozenSet[int]
    cost: float


@dataclass
class _ServiceEntry:
    """Cache bookkeeping for one peer's service matrix.

    The matrix *bytes* live in the evaluator's service store; the entry
    holds the candidate row order plus dirtiness/memo state.  ``service``
    is a transient :class:`ServiceCosts` view over the store's current
    backing array — cached only for stores whose backing never moves, so
    a spill store's demotions actually release the RAM copy.
    """

    candidates: Tuple[int, ...]
    service: Optional[ServiceCosts] = None
    dirty: Set[int] = field(default_factory=set)
    #: Per-target cumulative upper bound on how much the column minimum of
    #: *any* strategy can have decreased across repairs since the memo was
    #: stored (sum over repairs of max over repaired rows of the positive
    #: part of ``old - new``).  Reset whenever a fresh response is memoized.
    dec_cum: Optional[np.ndarray] = None
    #: True when any repair since the memo actually changed a weight.
    changed_since_memo: bool = False
    memo: Optional[_ResponseMemo] = None
    #: Raw ``d_H`` rows backing the weights (dynamic-repair state): row
    #: ``k`` holds distances from ``candidates[k]`` on ``H_peer``.  The
    #: normalization is not float-invertible, so incremental service
    #: repair patches these and re-normalizes.  ``None`` when dynamic
    #: repair is off or the store is RAM-budgeted (keeping a second
    #: resident copy would break the spill store's memory contract).
    raw: Optional[np.ndarray] = None
    #: Flip-log cursor the ``raw`` rows are current with.
    cursor: int = 0
    #: Pre-change bytes of each weights row changed since the memo was
    #: stored, keyed by row index.  When every such row is byte-identical
    #: to its recorded state again, the whole matrix is bit-identical to
    #: memo time and the memo is reusable for any method (the dirty-row
    #: *slice* digest — the full-matrix comparison it replaces almost
    #: never fired at n >= 64 because one row always drifted).
    memo_rows: Dict[int, bytes] = field(default_factory=dict)


class GameEvaluator:
    """Memoizing evaluator bound to one game and one profile at a time.

    Parameters
    ----------
    game:
        The :class:`~repro.core.game.TopologyGame` to evaluate.
    profile:
        Optional initial profile to bind (default: bind lazily on first
        :meth:`set_profile`).
    backend:
        Shortest-path backend forwarded to the Dijkstra layer (not to be
        confused with the *solver execution* backend of
        :meth:`gain_sweep`).
    max_cached_services:
        Upper bound on the number of per-peer service matrices kept warm
        (each is an ``(n-1) x n`` float matrix).  Oldest entries are
        evicted first.
    store:
        Where cached service matrices live: ``"memory"`` (default,
        plain ndarrays), ``"shared"`` (shared-memory segments, required
        for — and auto-migrated to by — the process solver backend),
        ``"spill"`` (budgeted RAM + memory-mapped spill file), or any
        :class:`~repro.core.service_store.ServiceStore` instance.
    dynamic_repair:
        When True (default), dirty distance rows are patched in place by
        the incremental updater of :mod:`repro.graphs.dynamic_sssp`
        (O(affected) per rebind) instead of re-running a full per-source
        Dijkstra; results are bitwise identical either way.  ``False``
        keeps the scratch repair path (reference/benchmark baseline).
    """

    def __init__(
        self,
        game: "TopologyGame",
        profile: Optional[StrategyProfile] = None,
        backend: str = "auto",
        max_cached_services: int = 512,
        store="memory",
        dynamic_repair: bool = True,
    ) -> None:
        self._game = game
        self._dmat = game.distance_matrix
        self._alpha = game.alpha
        # The cost model only touches the accounting surfaces
        # (social_cost / peer_costs / peer_cost) and the memo digest:
        # per the externality contract in repro.core.cost_model, its
        # per-peer term is constant w.r.t. each peer's own strategy, so
        # every solve path below prices with the scalar alpha and stays
        # exact for any conforming model.
        self._cost_model = game.cost_model
        self._n = game.n
        self._backend = backend
        self._max_cached = max(1, int(max_cached_services))
        self._profile: Optional[StrategyProfile] = None
        self._overlay: Optional[WeightedDigraph] = None
        self._dist: Optional[np.ndarray] = None
        self._dist_dirty: Set[int] = set()
        self._stretch: Optional[np.ndarray] = None
        self._service: Dict[int, _ServiceEntry] = {}
        self._repairer: Optional[RowRepairer] = (
            RowRepairer(backend) if dynamic_repair else None
        )
        self._dist_cursor = 0
        self.stats = EvaluatorStats()
        self._store = make_store(store)
        self._store.bind_stats(self.stats)
        # Safety net mirroring the backend _shutdown pattern: if this
        # evaluator is abandoned without close() — a test failure
        # mid-run, a CLI Ctrl-C — the store still gets closed at GC or
        # interpreter exit, keeping shm segments out of /dev/shm and
        # spill slabs out of the temp dir.  The one-element cell tracks
        # store migrations so the *current* store is the one closed.
        self._store_cell: List = [self._store]
        self._store_finalizer = weakref.finalize(
            self, GameEvaluator._close_stores, self._store_cell
        )
        if profile is not None:
            self.set_profile(profile)

    @staticmethod
    def _close_stores(cell: List) -> None:
        for store in cell:
            store.close()

    # ------------------------------------------------------------------
    # Binding and invalidation
    # ------------------------------------------------------------------
    @property
    def game(self) -> "TopologyGame":
        return self._game

    @property
    def profile(self) -> StrategyProfile:
        """The currently bound profile (raises if none is bound)."""
        if self._profile is None:
            raise RuntimeError("no profile bound; call set_profile() first")
        return self._profile

    @property
    def overlay(self) -> WeightedDigraph:
        """The overlay ``G[s]`` of the bound profile.  Treat as read-only."""
        if self._overlay is None:
            self._overlay = overlay_from_matrix(self._dmat, self.profile)
        return self._overlay

    def set_profile(self, profile: StrategyProfile) -> "GameEvaluator":
        """Bind ``profile``, invalidating incrementally when possible.

        Returns ``self`` so calls can be chained into queries.
        """
        if profile.n != self._n:
            raise ValueError(
                f"profile has {profile.n} peers but game has {self._n}"
            )
        old = self._profile
        if old is None:
            self._reset(profile)
            return self
        if profile is old:
            return self
        changed = [
            i
            for i in range(self._n)
            if profile.strategy(i) != old.strategy(i)
        ]
        if not changed:
            self._profile = profile
            return self
        if len(changed) == 1:
            self._rebind_single(changed[0], profile)
        else:
            self._reset(profile)
        return self

    def invalidate(self) -> None:
        """Drop every cache (the bound profile, if any, is kept)."""
        if self._profile is not None:
            self._reset(self._profile)
            self.stats.full_resets -= 1  # reset() counts; manual call is free

    def _reset(self, profile: StrategyProfile) -> None:
        self._profile = profile
        self._overlay = None
        if self._dist is not None:
            self._account_distance(-self._dist.nbytes)
        self._dist = None
        self._dist_dirty = set()
        self._stretch = None
        self._service = {}
        self._store.clear()
        if self._repairer is not None:
            # Every maintained row block is gone, so the flip log has no
            # remaining consumer; drop it (and the stale reverse index).
            self._repairer.reset()
        self._dist_cursor = 0
        self.stats.full_resets += 1

    def _rebind_single(self, peer: int, profile: StrategyProfile) -> None:
        """Incremental rebind after ``peer`` alone changed strategy."""
        overlay = self.overlay  # materialized against the *old* profile
        # Sources whose rows may change = nodes that reach `peer`.  Edges
        # into `peer` are identical in the old and new overlay, so the
        # reverse reachability computed here is valid for both.
        new_out = {
            j: float(self._dmat[peer, j]) for j in profile.strategy(peer)
        }
        if self._repairer is not None:
            # One call splices the overlay, logs the flip for the row
            # repairers, and answers reachability from the maintained
            # reverse index in O(affected edges).
            affected = self._repairer.apply_rebind(overlay, peer, new_out)
        else:
            affected = self._reverse_reachable(overlay, peer)
            # Splice the overlay in place: only `peer`'s out-edges differ.
            overlay.remove_out_edges(peer)
            for j, w in new_out.items():
                overlay.add_edge(peer, j, w)
        self._mark_distance_dirty(affected)
        self._stretch = None
        for i, entry in self._service.items():
            if i == peer:
                continue  # H_peer excludes peer's out-edges: fully valid.
            entry.dirty |= affected - {i}
        self._profile = profile
        self.stats.incremental_rebinds += 1

    def _mark_distance_dirty(self, affected: Set[int]) -> None:
        """Record that the distance rows in ``affected`` may have changed.

        Hook point for subclasses that keep overlay distances somewhere
        other than the monolithic ``_dist`` matrix (the sharded
        evaluator routes the dirty rows to their owning shards here).
        """
        if self._dist is not None:
            self._dist_dirty |= affected

    def _account_distance(self, delta: int) -> None:
        """Track resident overlay-distance bytes (and their peak)."""
        self.stats.account_distance(delta)

    @staticmethod
    def _reverse_reachable(overlay: WeightedDigraph, target: int) -> Set[int]:
        """All nodes with a path *to* ``target`` (including ``target``)."""
        n = overlay.num_nodes
        preds: List[List[int]] = [[] for _ in range(n)]
        for u, v, _w in overlay.edges():
            preds[v].append(u)
        seen = {target}
        frontier = [target]
        while frontier:
            node = frontier.pop()
            for u in preds[node]:
                if u not in seen:
                    seen.add(u)
                    frontier.append(u)
        return seen

    # ------------------------------------------------------------------
    # Distances, stretches, costs
    # ------------------------------------------------------------------
    def overlay_distances(self) -> np.ndarray:
        """All-pairs overlay distance matrix (cached, row-incremental)."""
        if self._dist is None:
            self._dist = multi_source_distances(
                self.overlay, list(range(self._n)), backend=self._backend
            )
            self._dist_dirty = set()
            self._dist_cursor = self._log_head()
            self.stats.distance_full_builds += 1
            self._account_distance(self._dist.nbytes)
        elif self._dist_dirty:
            rows = sorted(self._dist_dirty)
            if self._repairer is not None:
                repaired, fallbacks = self._repairer.repair_block(
                    self._dist, rows, rows, self.overlay, self._dist_cursor
                )
                self._dist_cursor = self._repairer.head
                self.stats.distance_vertices_repaired += repaired
                self.stats.distance_full_fallbacks += fallbacks
            else:
                fresh = multi_source_distances(
                    self.overlay, rows, backend=self._backend
                )
                self._dist[rows] = fresh
            self.stats.distance_rows_recomputed += len(rows)
            self._dist_dirty = set()
            self._stretch = None
        return self._dist

    def _log_head(self) -> int:
        """Current flip-log head (0 when dynamic repair is off)."""
        return 0 if self._repairer is None else self._repairer.head

    def stretches(self) -> np.ndarray:
        """Pairwise stretch matrix of the bound profile (cached)."""
        if self._stretch is None or self._dist_dirty:
            self._stretch = stretch_from_distances(
                self._dmat, self.overlay_distances()
            )
        return self._stretch

    def social_cost(self) -> CostBreakdown:
        """Social cost ``C(G[s])`` of the bound profile."""
        breakdown = social_cost_from_stretch(
            self.stretches(), self.profile, self._alpha
        )
        if self._cost_model is not None:
            extra = self._cost_model.social_extra(self.profile)
            if extra:
                breakdown = CostBreakdown(
                    breakdown.link_cost, breakdown.stretch_cost, extra
                )
        return breakdown

    def peer_costs(self) -> np.ndarray:
        """Vector of individual costs ``c_i(s)`` for all peers."""
        costs = individual_costs_from_stretch(
            self.stretches(), self.profile, self._alpha
        )
        if self._cost_model is not None:
            term = self._cost_model.per_peer_term(self.profile)
            if term is not None:
                costs = costs + term
        return costs

    def peer_cost(self, peer: int) -> float:
        """Individual cost of one peer, served from its service matrix."""
        service = self.service_costs(peer)
        cost = strategy_cost(
            service, sorted(self.profile.strategy(peer)), self._alpha
        )
        if self._cost_model is not None:
            term = self._cost_model.per_peer_term(self.profile)
            if term is not None:
                cost = cost + float(term[peer])
        return cost

    # ------------------------------------------------------------------
    # Service-cost matrices
    # ------------------------------------------------------------------
    def service_costs(
        self, peer: int, rows: Optional[Sequence[int]] = None
    ) -> ServiceCosts:
        """The service-cost matrix ``W`` of ``peer`` (cached, row-repaired).

        The returned object is a view over the *live* cache entry: its
        ``weights`` array is marked read-only (mutating it would poison
        every query routed through this evaluator) and may be repaired in
        place by a later :meth:`set_profile`.  Copy it if you need a
        snapshot.  With a spill store the backing array may move between
        accesses — re-fetch rather than holding the view.

        ``rows`` narrows the freshness guarantee: only those candidate
        rows are guaranteed repaired; other dirty rows may stay stale
        (and stay *marked* dirty, so a later unrestricted call repairs
        them).  Callers that read a known handful of rows — the
        stale-commit re-check reads the committed and proposed links
        only — skip re-solving the rest of a heavily dirtied matrix.
        Repaired row values are bitwise identical either way; the hint
        only defers work.  (Entries holding dynamic-repair state are
        repaired in full regardless: their flip-log cursor is shared by
        the whole matrix, so a partial catch-up would corrupt it.)
        """
        if not 0 <= peer < self._n:
            raise IndexError(f"peer {peer} out of range [0, {self._n})")
        entry = self._service.get(peer)
        if entry is None:
            entry = self._build_service(peer)
            self._evict_services(protect={peer})
        elif entry.dirty:
            if rows is not None and entry.raw is None:
                self._repair_service_rows(peer, entry, rows)
            else:
                self._repair_service(peer, entry)
        else:
            self.stats.service_cache_hits += 1
        return self._entry_service(peer, entry)

    def strategy_rows_cost(self, peer: int, strategy: Sequence[int]) -> float:
        """Cost of ``strategy`` for ``peer`` from a rows-only build.

        Prices exactly the strategy's link rows — one multi-source
        Dijkstra from ``|strategy|`` sources over the stripped overlay —
        instead of building or repairing ``peer``'s full candidate
        matrix; the service cache is neither consulted nor touched.
        Row values go through the same :func:`service_cost_rows` +
        :func:`strategy_cost` pipeline as the cached path, so the result
        is bitwise identical to
        ``strategy_cost(self.service_costs(peer), strategy, alpha)``.
        The service front-end answers ``query_cost`` through this: a
        query is a point read and must not pay for (or perturb) the
        solver-grade cache.
        """
        return self.strategy_rows_costs([(peer, strategy)])[0]

    def strategy_rows_costs(
        self, items: Sequence[Tuple[int, Sequence[int]]]
    ) -> List[float]:
        """Batched :meth:`strategy_rows_cost`: one blocked Dijkstra pass.

        All ``(peer, strategy)`` point reads of an epoch share one
        :func:`blocked_multi_source_distances` call (which guarantees
        per-job results bitwise identical to the unbatched path), so a
        query-heavy batch prices every strategy for a handful of scipy
        calls instead of one stripped-overlay Dijkstra per peer.
        """
        prepared = [
            (peer, sorted(set(strategy))) for peer, strategy in items
        ]
        jobs = []
        if self._n > 1:
            overlay = self.overlay
            jobs = [
                (overlay.copy_without_out_edges(peer), links)
                for peer, links in prepared
                if links
            ]
        dist_blocks = iter(
            blocked_multi_source_distances(jobs, backend=self._backend)
        )
        costs = []
        for peer, links in prepared:
            k = len(links)
            if self._n == 1:
                costs.append(self._alpha * k)
            elif k == 0:
                costs.append(math.inf)
            else:
                weights = normalize_service_rows(
                    self._dmat, peer, links, next(dist_blocks)
                )
                costs.append(
                    self._alpha * k + float(weights.min(axis=0).sum())
                )
        return costs

    def _entry_service(self, peer: int, entry: _ServiceEntry) -> ServiceCosts:
        """A :class:`ServiceCosts` view over the store's current backing."""
        backing = self._store.get(peer)
        service = entry.service
        if service is not None and service.weights is backing:
            return service
        service = ServiceCosts(peer, entry.candidates, backing)
        if self._store.stable_backing:
            entry.service = service
        return service

    def _build_service(self, peer: int) -> _ServiceEntry:
        """Build one peer's matrix from scratch (keeping raw ``d_H`` rows
        as dynamic-repair state when that mode is on)."""
        candidates = tuple(j for j in range(self._n) if j != peer)
        if not candidates:
            service = service_costs_from_overlay(
                self._dmat, self.overlay, peer, self._backend
            )
            return self._admit_service(
                peer, service.candidates, service.weights
            )
        stripped = self.overlay.copy_without_out_edges(peer)
        dist_h = multi_source_distances(
            stripped, list(candidates), backend=self._backend
        )
        weights = normalize_service_rows(self._dmat, peer, candidates, dist_h)
        return self._admit_service(peer, candidates, weights, raw=dist_h)

    def _keep_raw(self) -> bool:
        """Whether service entries may keep raw ``d_H`` repair state.

        Gated off for RAM-budgeted stores: the raw rows double a
        matrix's resident footprint, which would break the spill store's
        memory contract; those entries repair through scratch rows
        exactly as before.
        """
        return (
            self._repairer is not None
            and self._store.chunk_budget_bytes is None
        )

    def _admit_service(
        self,
        peer: int,
        candidates: Sequence[int],
        weights: np.ndarray,
        raw: Optional[np.ndarray] = None,
    ) -> _ServiceEntry:
        self._store.put(peer, weights)
        entry = _ServiceEntry(
            candidates=tuple(candidates), dec_cum=np.zeros(self._n)
        )
        if raw is not None and self._keep_raw():
            entry.raw = raw
            entry.cursor = self._log_head()
        self._service[peer] = entry
        self.stats.service_full_builds += 1
        return entry

    def _repair_sources(self, entry: _ServiceEntry) -> List[int]:
        """Consume ``entry.dirty``, returning the candidate rows to rebuild."""
        row_of = {c: k for k, c in enumerate(entry.candidates)}
        sources = sorted(c for c in entry.dirty if c in row_of)
        dropped = len(entry.dirty) - len(sources)
        if dropped:
            # Only the matrix's own peer is a legitimate non-candidate;
            # the counter keeps invalidation coverage observable.
            self.stats.service_dirty_noncandidates += dropped
        entry.dirty = set()
        return sources

    def _repair_service(self, peer: int, entry: _ServiceEntry) -> None:
        sources = self._repair_sources(entry)
        if not sources:
            self.stats.service_cache_hits += 1
            return
        if entry.raw is not None:
            self._repair_service_dynamic(peer, entry, sources)
            return
        stripped = self.overlay.copy_without_out_edges(peer)
        fresh = service_cost_rows(
            self._dmat, stripped, peer, sources, self._backend
        )
        self._install_rows(peer, entry, sources, fresh)

    def _repair_service_rows(
        self, peer: int, entry: _ServiceEntry, rows: Sequence[int]
    ) -> None:
        """Repair only the dirty rows among ``rows`` (scratch entries).

        The rest of ``entry.dirty`` is left intact for a later
        unrestricted repair.  Splitting a repair into batches only makes
        the effect bound more conservative (``dec_cum`` accumulates one
        max-drop per install), so memo correctness is preserved.
        """
        row_of = {c: k for k, c in enumerate(entry.candidates)}
        wanted = set(rows)
        sources = sorted(
            c for c in entry.dirty if c in wanted and c in row_of
        )
        if not sources:
            self.stats.service_cache_hits += 1
            return
        entry.dirty.difference_update(sources)
        self.stats.service_partial_repairs += 1
        stripped = self.overlay.copy_without_out_edges(peer)
        fresh = service_cost_rows(
            self._dmat, stripped, peer, sources, self._backend
        )
        self._install_rows(peer, entry, sources, fresh)

    def _repair_service_dynamic(
        self, peer: int, entry: _ServiceEntry, sources: List[int]
    ) -> None:
        """Patch the entry's raw ``d_H`` rows in place, then re-normalize.

        The flips at ``peer`` itself are excluded (``H_peer`` never held
        its out-edges), and normalization of the repaired raw rows runs
        through the same :func:`normalize_service_rows` as every build
        path, so the installed weights are bitwise identical to a
        scratch repair.
        """
        row_of = {c: k for k, c in enumerate(entry.candidates)}
        positions = [row_of[c] for c in sources]
        repaired, fallbacks = self._repairer.repair_block(
            entry.raw,
            positions,
            sources,
            self.overlay,
            entry.cursor,
            exclude=peer,
        )
        entry.cursor = self._repairer.head
        self.stats.distance_vertices_repaired += repaired
        self.stats.distance_full_fallbacks += fallbacks
        fresh = normalize_service_rows(
            self._dmat, peer, sources, entry.raw[positions]
        )
        self._install_rows(peer, entry, sources, fresh)

    def _install_rows(
        self,
        peer: int,
        entry: _ServiceEntry,
        sources: Sequence[int],
        fresh: np.ndarray,
    ) -> None:
        """Write repaired rows in place and advance the effect bound."""
        row_of = {c: k for k, c in enumerate(entry.candidates)}
        rows = [row_of[c] for c in sources]
        old = self._store.get(peer)[rows]  # fancy indexing: a snapshot copy
        self._store.write_rows(peer, rows, fresh)
        self.stats.service_rows_recomputed += len(rows)
        self.stats.service_rows_reused += len(entry.candidates) - len(rows)
        if np.array_equal(old, fresh):
            return
        if entry.memo is not None:
            # Remember each changed row's memo-time bytes: if every such
            # row later matches its recorded bytes again, the matrix is
            # bit-identical to memo time (the slice digest behind
            # _memo_slice_intact).
            changed = ~np.all(old == fresh, axis=1)
            for k, row in enumerate(rows):
                if changed[k]:
                    entry.memo_rows.setdefault(row, old[k].tobytes())
        with np.errstate(invalid="ignore"):
            drop = old - fresh
        drop[np.isnan(drop)] = 0.0  # inf - inf: still unreachable, no drop
        np.maximum(drop, 0.0, out=drop)
        if entry.dec_cum is None:
            entry.dec_cum = np.zeros(self._n)
        entry.dec_cum += drop.max(axis=0)
        entry.changed_since_memo = True

    def batch_service_costs(
        self, peers: Optional[Sequence[int]] = None
    ) -> List[ServiceCosts]:
        """Service matrices for many peers from blocked Dijkstra calls.

        Missing matrices are built in full and dirty ones repaired, but
        instead of one shortest-path call per peer the underlying
        multi-source runs are stacked into a block-diagonal graph and
        answered by :func:`~repro.graphs.shortest_paths.
        blocked_multi_source_distances` — a handful of scipy calls per
        scheduler round (chunked to the store's byte budget when one is
        configured).  Results (weights, cache bookkeeping, stats
        semantics) are identical to calling :meth:`service_costs` once
        per peer; only the call count changes.
        """
        self.profile  # raises unless a profile is bound
        peers = list(range(self._n)) if peers is None else list(peers)
        self._batch_refresh(peers)
        return [
            self._entry_service(peer, self._service[peer]) for peer in peers
        ]

    def _batch_refresh(self, peers: Sequence[int]) -> None:
        """Build/repair many peers' matrices via blocked Dijkstra.

        Write-only core of :meth:`batch_service_costs`: everything lands
        in the service store without materializing result views, so bulk
        refreshes keep a spill store's resident set bounded.

        The requested peers are protected from eviction: a request for
        more matrices than ``max_cached_services`` legitimately needs
        them all alive at once, so the cap bounds the cache *between*
        requests, not within one (the pre-store code had the same
        transient overshoot, just implicitly).
        """
        requested = set(peers)
        jobs: List[Tuple[int, str, List[int]]] = []
        for peer in dict.fromkeys(peers):
            if not 0 <= peer < self._n:
                raise IndexError(f"peer {peer} out of range [0, {self._n})")
            entry = self._service.get(peer)
            if entry is None:
                if self._n <= 1:
                    self.service_costs(peer)
                    continue
                candidates = [j for j in range(self._n) if j != peer]
                jobs.append((peer, "build", candidates))
            elif entry.dirty:
                sources = self._repair_sources(entry)
                if not sources:
                    self.stats.service_cache_hits += 1
                elif entry.raw is not None:
                    # Dynamic entries repair O(affected) rows in place —
                    # cheaper than joining the blocked Dijkstra pass.
                    self._repair_service_dynamic(peer, entry, sources)
                else:
                    jobs.append((peer, "repair", sources))
            else:
                self.stats.service_cache_hits += 1
        if not jobs:
            return
        overlay = self.overlay
        for chunk in self._job_chunks(jobs):
            dist_blocks = blocked_multi_source_distances(
                [
                    (overlay.copy_without_out_edges(peer), sources)
                    for peer, _kind, sources in chunk
                ],
                backend=self._backend,
            )
            for (peer, kind, sources), dist_h in zip(chunk, dist_blocks):
                weights = normalize_service_rows(
                    self._dmat, peer, sources, dist_h
                )
                if kind == "build":
                    self._admit_service(
                        peer, tuple(sources), weights, raw=dist_h
                    )
                else:
                    self._install_rows(
                        peer, self._service[peer], sources, weights
                    )
        self.stats.batch_calls += 1
        self._evict_services(protect=requested)

    def _job_chunks(
        self, jobs: List[Tuple[int, str, List[int]]]
    ) -> Iterator[List[Tuple[int, str, List[int]]]]:
        """Split a blocked build into store-budget-sized chunks.

        Without a store budget everything goes in one blocked call (the
        historical behavior).  With one, each chunk materializes at most
        ``chunk_budget_bytes`` of fresh matrices before they are handed
        to the store — per-source Dijkstra runs are independent, so the
        chunking cannot change a single value.
        """
        budget = self._store.chunk_budget_bytes
        if budget is None or self._n <= 1:
            yield jobs
            return
        matrix_nbytes = (self._n - 1) * self._n * 8
        per_chunk = max(1, budget // max(1, matrix_nbytes))
        for start in range(0, len(jobs), per_chunk):
            yield jobs[start : start + per_chunk]

    def _evict_services(self, protect: Optional[Set[int]] = None) -> None:
        """Evict oldest entries past the cap, sparing ``protect``.

        Callers protect the peers of the in-flight request so a sweep
        wider than ``max_cached_services`` cannot evict matrices it is
        about to read (or hand to pool workers); the cache shrinks back
        on the next, narrower request.
        """
        if len(self._service) <= self._max_cached:
            return
        protect = protect or set()
        for peer in list(self._service):
            if len(self._service) <= self._max_cached:
                break
            if peer in protect:
                continue
            del self._service[peer]
            self._store.discard(peer)

    # ------------------------------------------------------------------
    # Strategic queries
    # ------------------------------------------------------------------
    #: Methods whose memoized response may be reused under the effect
    #: bound (they return a true optimum, so "no strategy can have
    #: overtaken it" is provable).  Heuristic methods reuse memos only
    #: when the matrix is bit-identical (the solver is deterministic).
    _EXACT_METHODS = ("exact", "brute")

    def best_response(
        self, peer: int, method: str = "exact"
    ) -> BestResponseResult:
        """Best (or heuristic) response of ``peer`` from the cached ``W``.

        Responses are memoized per peer: when the dirty-row effect bound
        proves the stored response cannot have been overtaken (see
        :meth:`_memoized_response`), the solver is skipped entirely and
        the memo is re-validated against the peer's current strategy.
        """
        service = self.service_costs(peer)
        cached = self._memoized_response(peer, method)
        if cached is not None:
            return cached
        response = best_response_from_service(
            service, self.profile.strategy(peer), self._alpha, method
        )
        self._store_memo(peer, response)
        return response

    def gain_sweep(
        self,
        method: str = "exact",
        peers: Optional[Sequence[int]] = None,
        workers: int = 1,
        backend=None,
    ) -> List[BestResponseResult]:
        """Every peer's current best response (and gain) in one pass.

        The sweep (1) refreshes all requested service matrices through
        one blocked-Dijkstra pass (:meth:`batch_service_costs` core),
        (2) answers peers whose memoized response provably survived from
        the memo, and (3) dispatches only the remaining peers to the
        response solver through an execution backend
        (:mod:`repro.core.backends`): in the calling thread (serial), a
        thread pool, or a process pool attached to the shared service
        store.  The per-peer solves are independent pure functions of
        their service matrices, so results are identical for any backend
        and worker count.

        ``backend`` accepts a :class:`~repro.core.backends.SolverBackend`
        instance or a spec string (``"serial"``/``"thread"``/
        ``"process"``/``"shard"``); ``None`` keeps the legacy behavior
        of sizing a thread pool from ``workers``.  A process backend
        requires a shareable store — a plain in-memory store is migrated
        to shared memory once, then workers attach it zero-copy.  The
        shard backend ships ``(peer, strategy)`` tasks to the shard
        workers owning the peers (sharded evaluators with process/socket
        placement only); the workers build and cache the matrices, so
        this evaluator skips its own refresh for dispatched peers.

        Returns results in ``peers`` order (default: all peers).  This is
        the engine behind the max-gain activation policy and multi-peer
        scheduler batches: one sub-round of logically-concurrent
        activations costs one blocked build plus the solves the effect
        bound could not skip.
        """
        backend = self._resolve_solver_backend(backend, workers)
        profile = self.profile
        peers = list(range(self._n)) if peers is None else list(peers)
        if backend.distributed:
            self._ensure_shareable_store()
        if not backend.wants_tasks:
            self._batch_refresh(peers)
        # else: shard-side solves — the owning workers build, cache and
        # repair their own service matrices, so the coordinator skips
        # its local refresh entirely (a warm, provably-clean local memo
        # still answers below; dirty or absent entries go to the wire).
        self.stats.gain_sweeps += 1
        results: Dict[int, BestResponseResult] = {}
        to_solve: List[int] = []
        for peer in peers:
            if peer in results:
                continue
            cached = self._memoized_response(peer, method)
            if cached is not None:
                results[peer] = cached
            else:
                to_solve.append(peer)

        alpha = self._alpha
        services: Dict[int, ServiceCosts] = {}
        if (
            not backend.distributed
            and not backend.wants_tasks
            and backend.workers > 1
            and len(to_solve) > 1
        ):
            # Materialize before the parallel section: worker threads
            # must not race on the store's bookkeeping (LRU, flags).
            for peer in to_solve:
                services[peer] = self._entry_service(peer, self._service[peer])

        def solve(peer: int) -> BestResponseResult:
            service = services.get(peer)
            if service is None:
                service = self._entry_service(peer, self._service[peer])
            return best_response_from_service(
                service, profile.strategy(peer), alpha, method
            )

        make_task = None
        if (backend.distributed or backend.wants_tasks) and to_solve:
            if backend.distributed:
                self._store.flush(to_solve)
            digest = self._profile_digest()

            def make_task(peer: int):
                handle = None
                if backend.distributed:
                    handle = self._store.handle(peer)
                    if handle is None:  # pragma: no cover - store contract
                        raise RuntimeError(
                            f"store {self._store.name!r} produced no "
                            f"handle for peer {peer}"
                        )
                # Task-routing backends (shard-side solves) source the
                # matrix at the worker that owns the peer: no handle.
                return (
                    handle,
                    peer,
                    tuple(profile.strategy(peer)),
                    alpha,
                    method,
                    digest,
                )

        solved = backend.run_solves(to_solve, solve, make_task)
        for peer, response in zip(to_solve, solved):
            self._store_memo(peer, response)
            results[peer] = response
        return [results[peer] for peer in peers]

    def _resolve_solver_backend(self, backend, workers: int) -> SolverBackend:
        """Resolve a gain-sweep backend spec for *this* evaluator.

        Subclass hook: the sharded evaluator overrides it to bind the
        ``"shard"`` backend to its live worker pool.  Here the spec is
        rejected — a plain evaluator has no shard fabric to route solves
        to, and silently solving locally would hide the misconfiguration.
        """
        resolved = resolve_backend(backend, workers)
        if resolved.wants_tasks:
            raise ValueError(
                "backend 'shard' routes solves to shard worker "
                "processes; it needs a ShardedEvaluator with "
                "shard_placement 'process' or 'socket'"
            )
        return resolved

    def _profile_digest(self) -> int:
        """Stable fingerprint of the bound profile (task metadata).

        Folds in the cost-model digest so tasks (and any memo keyed on
        the digest downstream) from differently-priced games can never
        alias — metadata-only today, since solves are model-independent
        by the externality contract.
        """
        digest = hash(self.profile.key()) & 0xFFFFFFFF
        if self._cost_model is not None:
            digest ^= self._cost_model.digest()
        return digest

    def _ensure_shareable_store(self) -> None:
        """Migrate the service store to shared memory if it cannot hand
        out cross-process handles (one-time copy of the warm cache)."""
        if self._store.shareable:
            return
        old = self._store
        new = SharedMemoryStore()
        new.bind_stats(self.stats)
        for peer in old.keys():
            new.put(peer, old.get(peer))
            old.discard(peer)
            entry = self._service.get(peer)
            if entry is not None:
                entry.service = None  # view points at the retired buffer
        old.close()
        self._store = new
        self._store_cell[0] = new  # the finalizer must close the live store

    def _memoized_response(
        self, peer: int, method: str
    ) -> Optional[BestResponseResult]:
        """The stored response, iff it provably equals a fresh solve.

        Two sound reuse conditions, checked against a *clean* (repaired)
        service matrix:

        * the matrix is bit-identical to when the memo was stored — any
          deterministic solver returns the same strategy.  Checked via
          the dirty-row *slice* digest: ``entry.memo_rows`` records the
          memo-time bytes of every row changed since the memo, so the
          matrix is provably identical exactly when each recorded row
          matches its bytes again (the ``changed_since_memo`` flag alone
          almost never cleared at n >= 64 — one drifted row anywhere
          killed the memo for good); or
        * for exact methods, the effect bound holds: every repair
          accumulated a per-target upper bound ``dec_cum[j]`` on how much
          any strategy's column minimum can have dropped, so for every
          strategy ``S``, ``f_new(S) >= f_old(S) - sum_j dec_cum[j] >=
          old_opt - delta``.  When the memoized strategy's freshly
          recomputed cost is ``<= old_opt - delta`` it is still optimal.

        Either way the memo is re-scored against the peer's *current*
        strategy (tolerance and status-quo tie-breaking mirror
        :func:`~repro.core.best_response.best_response_from_service`), so
        the result matches a fresh solve exactly on instances without
        mathematically tied optima (the module-docstring caveat).
        """
        entry = self._service.get(peer)
        if entry is None or entry.dirty:
            return None
        memo = entry.memo
        if memo is None or memo.method != method:
            return None
        if not entry.candidates:
            return None
        service = self._entry_service(peer, entry)
        if not entry.changed_since_memo:
            opt_cost = memo.cost
        elif self._memo_slice_intact(entry, service.weights):
            opt_cost = memo.cost
        else:
            if method not in self._EXACT_METHODS:
                return None
            delta = float(entry.dec_cum.sum())
            if not math.isfinite(delta):
                return None
            opt_cost = strategy_cost(
                service, sorted(memo.strategy), self._alpha
            )
            if not opt_cost <= memo.cost - delta:
                return None
        current = sorted(self.profile.strategy(peer))
        current_cost = strategy_cost(service, current, self._alpha)
        self.stats.response_memo_hits += 1
        if opt_cost < current_cost - improvement_tolerance(current_cost):
            return BestResponseResult(
                peer, memo.strategy, opt_cost, current_cost, True, method
            )
        return BestResponseResult(
            peer, frozenset(current), current_cost, current_cost, False, method
        )

    @staticmethod
    def _memo_slice_intact(
        entry: _ServiceEntry, weights: np.ndarray
    ) -> bool:
        """True when every row changed since the memo has changed *back*.

        ``entry.memo_rows`` holds the memo-time bytes of exactly the rows
        that drifted; if each matches the live matrix again, the whole
        matrix is bit-identical to memo time (rows never recorded never
        changed), so the drift trackers are reset and the memo revived.
        Raw bytes are compared — not hashes — so a collision can never
        revive a stale memo.
        """
        if not entry.memo_rows:
            return False
        for row, blob in entry.memo_rows.items():
            if weights[row].tobytes() != blob:
                return False
        entry.memo_rows.clear()
        entry.changed_since_memo = False
        if entry.dec_cum is not None:
            entry.dec_cum[:] = 0.0
        return True

    def _store_memo(self, peer: int, response: BestResponseResult) -> None:
        entry = self._service.get(peer)
        self.stats.response_solves += 1
        if entry is None:  # evicted between build and solve
            return
        entry.memo = _ResponseMemo(
            response.method, response.strategy, response.cost
        )
        if entry.dec_cum is None:
            entry.dec_cum = np.zeros(self._n)
        entry.dec_cum[:] = 0.0
        entry.changed_since_memo = False
        entry.memo_rows.clear()

    def find_improving_deviation(
        self, peer: int
    ) -> Optional[BestResponseResult]:
        """Some strictly improving deviation of ``peer``, or None (exact)."""
        service = self.service_costs(peer)
        return improving_deviation_from_service(
            service, self.profile.strategy(peer), self._alpha
        )

    def peer_cost_key(self, peer: int) -> Tuple[int, float]:
        """Lexicographic cost key ``(unreachable targets, finite part)``.

        Matches the ordering used by better-response dynamics: reaching
        more peers dominates any finite saving (plain float comparison is
        useless through the infinite-cost regime).
        """
        service = self.service_costs(peer)
        strategy = self.profile.strategy(peer)
        minima = self._strategy_minima(service, strategy)
        return self._key_of(minima, len(strategy))

    def _strategy_minima(
        self, service: ServiceCosts, strategy
    ) -> np.ndarray:
        if len(strategy) == 0 or service.num_candidates == 0:
            minima = np.full(self._n, math.inf)
            minima[service.peer] = 0.0
            return minima
        row_of = {c: k for k, c in enumerate(service.candidates)}
        rows = [row_of[s] for s in strategy]
        return service.weights[rows].min(axis=0)

    def _key_of(self, minima: np.ndarray, size: int) -> Tuple[int, float]:
        infinite = np.isinf(minima)
        finite_sum = float(np.where(infinite, 0.0, minima).sum())
        return int(infinite.sum()), self._alpha * size + finite_sum

    # ------------------------------------------------------------------
    # Batch flip evaluation
    # ------------------------------------------------------------------
    def find_improving_flip(
        self, peer: int
    ) -> Optional[Tuple[StrategyProfile, float]]:
        """Best single-link flip of ``peer`` scored from one ``W`` matrix.

        Vectorized replacement for the naive per-candidate-Dijkstra path
        (:func:`repro.core.better_response.find_improving_flip_naive`):
        drops use a columnwise top-2 reduction over the current strategy's
        rows, adds/swaps a single ``np.minimum`` against the cached rows.
        Candidate enumeration order and tie-breaking mirror the naive
        implementation, so trajectories are preserved on instances
        without mathematically tied candidates (see the module docstring
        for the degenerate-tie caveat).
        """
        profile = self.profile
        service = self.service_costs(peer)
        if service.num_candidates == 0:
            return None
        weights = service.weights
        alpha = self._alpha
        n = self._n
        current = profile.strategy(peer)
        row_of = {c: k for k, c in enumerate(service.candidates)}
        # Candidate enumeration mirrors flip_candidates(): drops in the
        # strategy's iteration order, adds in ascending peer order, swaps
        # as (old in strategy order) x (new in ascending order).
        members = list(current)
        adds = [
            j for j in range(n) if j != peer and j not in current
        ]
        member_rows = [row_of[j] for j in members]
        add_rows = [row_of[j] for j in adds]

        empty_minima = np.full(n, math.inf)
        empty_minima[peer] = 0.0
        if member_rows:
            chosen = weights[member_rows]
            cur_min = chosen.min(axis=0)
        else:
            chosen = None
            cur_min = empty_minima
        current_key = self._key_of(cur_min, len(members))

        # minima over the strategy minus each single member (top-2 trick).
        if chosen is None:
            drop_minima = np.zeros((0, n))
        elif len(member_rows) == 1:
            drop_minima = empty_minima[None, :]
        else:
            part = np.partition(chosen, 1, axis=0)
            second = part[1]
            argmin = chosen.argmin(axis=0)
            drop_minima = np.where(
                argmin[None, :] == np.arange(len(member_rows))[:, None],
                second[None, :],
                cur_min[None, :],
            )

        blocks: List[np.ndarray] = []
        sizes: List[int] = []
        if member_rows:
            blocks.append(drop_minima)
            sizes.extend([len(members) - 1] * len(members))
        if add_rows:
            blocks.append(np.minimum(cur_min[None, :], weights[add_rows]))
            sizes.extend([len(members) + 1] * len(adds))
        if member_rows and add_rows:
            add_block = weights[add_rows]
            for t in range(len(members)):
                blocks.append(np.minimum(drop_minima[t][None, :], add_block))
                sizes.extend([len(members)] * len(adds))
        if not blocks:
            return None
        stacked = np.vstack(blocks)
        infinite = np.isinf(stacked)
        unreachable = infinite.sum(axis=1)
        finite = np.where(infinite, 0.0, stacked).sum(axis=1)
        finite += alpha * np.asarray(sizes, dtype=float)

        cur_u, cur_f = current_key
        tolerance = _RELATIVE_TOLERANCE * max(1.0, abs(cur_f))
        best_index = -1
        best_key: Optional[Tuple[int, float]] = None
        u_list = unreachable.tolist()
        f_list = finite.tolist()
        for index, (u, f) in enumerate(zip(u_list, f_list)):
            if u > cur_u:
                continue
            if u == cur_u and f >= cur_f - tolerance:
                continue
            key = (u, f)
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        if best_index < 0:
            return None
        strategy = self._flip_strategy(current, members, adds, best_index)
        gain = (
            math.inf if best_key[0] < cur_u else cur_f - best_key[1]
        )
        return profile.with_strategy(peer, strategy), gain

    @staticmethod
    def _flip_strategy(current, members, adds, index):
        """Reconstruct the flip at ``index`` of the enumeration order.

        Strategy sets are built with the same set operations as
        ``flip_candidates`` so the resulting frozensets iterate in the
        same order (cycle-detection keys and later flip enumerations then
        match the naive path bit for bit).
        """
        m, a = len(members), len(adds)
        if index < m:
            return current - {members[index]}
        index -= m
        if index < a:
            return current | {adds[index]}
        index -= a
        old = members[index // a]
        new = adds[index % a]
        return (current - {old}) | {new}

    # ------------------------------------------------------------------
    @property
    def store(self):
        """The bound service store (read-mostly; see its module docs)."""
        return self._store

    def close(self) -> None:
        """Release the service store's buffers (segments, spill file).

        Idempotent, and optional — the evaluator's finalizer (and each
        store's own) closes the buffers at garbage collection or
        interpreter exit — but deterministic teardown keeps shared-
        memory segments out of ``/dev/shm`` between runs.  An evaluator
        may keep serving queries after ``close()``: the stores re-arm
        their cleanup on the next write.  Safe on an instance whose
        ``__init__`` failed before the store was made.
        """
        self._service = {}
        store = getattr(self, "_store", None)
        if store is not None:
            store.close()

    def __enter__(self) -> "GameEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bound = self._profile is not None
        return (
            f"GameEvaluator(n={self._n}, alpha={self._alpha}, "
            f"bound={bound}, cached_services={len(self._service)})"
        )
