"""Potential-function and weak-acyclicity analysis.

Theorem 5.1 implies the topology game is **not a potential game**: a
potential function decreases along every improvement step, so potential
games cannot have improvement cycles, let alone equilibrium-free
instances.  This module provides the machinery to locate instances on the
convergence spectrum:

* **Improvement cycle witness** — a closed sequence of strictly
  improving single-peer deviations.  Its existence refutes any ordinal
  potential for the instance (:func:`find_improvement_cycle`).
* **Weak acyclicity** — a game is weakly acyclic when from *every*
  profile *some* best-response path reaches a Nash equilibrium.  Weakly
  acyclic games converge under random-order dynamics with probability 1
  even though adversarial orders may cycle.  For tiny games
  :func:`weak_acyclicity` measures the exact fraction of profiles that
  can reach an equilibrium via best responses — 1.0 means weakly acyclic,
  0.0 is the Theorem 5.1 regime (no equilibrium at all).

The interesting middle ground — instances with equilibria that some
states cannot reach — is where scheduler choice decides convergence; the
test suite probes all three regimes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.dynamics import BestResponseDynamics
from repro.core.exhaustive import MAX_EXHAUSTIVE_PEERS
from repro.core.game import TopologyGame
from repro.core.profile import StrategyProfile
from repro.core.response_graph import best_response_moves

__all__ = [
    "ImprovementCycle",
    "find_improvement_cycle",
    "WeakAcyclicityReport",
    "weak_acyclicity",
]


@dataclass(frozen=True)
class ImprovementCycle:
    """A witnessed closed loop of strictly improving deviations.

    ``profiles`` lists the distinct profiles around the loop; each hop is
    a single-peer strict improvement (recorded in ``gains``).  Existence
    refutes any ordinal potential function for the instance.
    """

    profiles: Tuple[StrategyProfile, ...]
    gains: Tuple[float, ...]

    @property
    def length(self) -> int:
        return len(self.profiles)

    @property
    def total_gain(self) -> float:
        """Sum of per-hop gains; strictly positive around a cycle is the
        potential-function contradiction made quantitative."""
        return float(sum(self.gains))


def find_improvement_cycle(
    game: TopologyGame,
    initial: Optional[StrategyProfile] = None,
    max_rounds: int = 300,
) -> Optional[ImprovementCycle]:
    """Search for an improvement cycle by best-response dynamics.

    Runs deterministic round-robin dynamics with cycle detection and, on
    a hit, replays one period to collect the per-hop gains.  ``None``
    means no cycle was found from this start (the instance may still
    admit cycles from other starts).
    """
    result = BestResponseDynamics(game, record_moves=True).run(
        initial=initial, max_rounds=max_rounds
    )
    if result.cycle is None:
        return None
    # Replay one period starting from the repeated state.
    profiles: List[StrategyProfile] = []
    gains: List[float] = []
    period_keys = list(dict.fromkeys(result.cycle.profiles))
    current = StrategyProfile(
        [frozenset(s) for s in period_keys[0]]
    )
    for _ in range(len(period_keys) * game.n + 1):
        profiles.append(current)
        moved = False
        for peer in range(game.n):
            response = game.best_response(current, peer)
            if response.improved:
                gains.append(response.gain)
                current = current.with_strategy(peer, response.strategy)
                moved = True
                break
        if not moved:  # pragma: no cover - cycle implies movement
            return None
        if current == profiles[0] and len(profiles) > 1:
            return ImprovementCycle(
                profiles=tuple(profiles), gains=tuple(gains)
            )
    # Trajectory wandered off the detected cycle; report what we looped.
    return ImprovementCycle(profiles=tuple(profiles), gains=tuple(gains))


@dataclass(frozen=True)
class WeakAcyclicityReport:
    """Exact reachability-to-equilibrium statistics of a tiny game.

    Attributes
    ----------
    num_profiles:
        Total states of the best-response graph.
    num_equilibria:
        Sinks (pure Nash equilibria).
    reachable_fraction:
        Fraction of states from which *some* best-response path reaches
        an equilibrium.  1.0 = weakly acyclic; 0.0 = Theorem 5.1 regime.
    """

    num_profiles: int
    num_equilibria: int
    reachable_fraction: float

    @property
    def is_weakly_acyclic(self) -> bool:
        return self.reachable_fraction == 1.0

    @property
    def has_trap_states(self) -> bool:
        """True when some states can never reach any equilibrium."""
        return self.reachable_fraction < 1.0


def weak_acyclicity(
    distance_matrix: np.ndarray, alpha: float
) -> WeakAcyclicityReport:
    """Exact weak-acyclicity analysis for ``n <= MAX_EXHAUSTIVE_PEERS``.

    Builds the full best-response move table and BFSes *backwards* from
    the sinks over improvement edges: a state is "good" when some
    best-response choice sequence leads to an equilibrium.
    """
    dmat = np.asarray(distance_matrix, dtype=float)
    n = dmat.shape[0]
    if n > MAX_EXHAUSTIVE_PEERS:
        raise ValueError(
            f"weak acyclicity analysis supports n <= "
            f"{MAX_EXHAUSTIVE_PEERS}, got {n}"
        )
    moves = best_response_moves(dmat, alpha)
    num_profiles = moves.shape[0]
    all_ids = np.arange(num_profiles, dtype=np.int64)
    is_sink = (moves == all_ids[:, None]).all(axis=1)
    sinks = np.nonzero(is_sink)[0]
    if sinks.size == 0:
        return WeakAcyclicityReport(
            num_profiles=num_profiles,
            num_equilibria=0,
            reachable_fraction=0.0,
        )
    # Reverse adjacency via sorting: edge (s -> moves[s, i]).
    sources = np.repeat(all_ids, moves.shape[1])
    targets = moves.reshape(-1)
    moving = targets != sources
    sources, targets = sources[moving], targets[moving]
    order = np.argsort(targets, kind="stable")
    sorted_targets = targets[order]
    sorted_sources = sources[order]
    starts = np.searchsorted(sorted_targets, all_ids, side="left")
    ends = np.searchsorted(sorted_targets, all_ids, side="right")

    good = is_sink.copy()
    queue = deque(int(x) for x in sinks)
    while queue:
        node = queue.popleft()
        for idx in range(starts[node], ends[node]):
            predecessor = int(sorted_sources[idx])
            if not good[predecessor]:
                good[predecessor] = True
                queue.append(predecessor)
    return WeakAcyclicityReport(
        num_profiles=num_profiles,
        num_equilibria=int(sinks.size),
        reachable_fraction=float(good.sum()) / num_profiles,
    )
