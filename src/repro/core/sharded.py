"""Sharded evaluators: split the peer space so no one holds O(n^2) rows.

:class:`~repro.core.evaluator.GameEvaluator` caps the reproduction at
roughly 10^4 peers because one object owns the full ``n x n`` overlay
distance matrix.  PR 3 already budgets the *service-matrix* side of the
cache (:class:`~repro.core.service_store.SpillStore`); this module shards
the remaining monolith — the distance matrix itself — and, with it, the
service-store budget:

* :class:`ShardPlan` partitions the peers into ``k`` contiguous
  *row blocks*.  Row-block layout matters: the evaluator's incremental
  invalidation is per *source row* (a peer changing strategy dirties the
  rows of every source that reaches it), so each dirtied row belongs to
  exactly one shard and repair work never crosses shard boundaries.
* :class:`ShardedDistances` gives every shard its slice of the overlay
  distance matrix, built lazily and bounded globally: at most
  ``max_resident_shards`` row blocks are held in RAM at once (LRU), so
  resident distance bytes stay near ``n^2/k * 8`` instead of ``n^2 * 8``.
  Cross-shard queries go through the narrow :meth:`ShardedDistances.rows`
  interface, which assembles copies of the requested rows from their
  owning shards.
* :class:`ShardedStore` gives every shard its own
  :class:`~repro.core.service_store.ServiceStore` (and therefore its own
  byte budget) and routes each peer's ``W`` matrix — including the
  zero-copy :meth:`~repro.core.service_store.ServiceStore.handle`
  descriptors that process-pool workers attach — to the owning shard's
  store.
* :class:`ShardedEvaluator` is a drop-in
  :class:`~repro.core.evaluator.GameEvaluator` facade wiring the two
  together — and, with ``placement="process"``, placing each shard's
  distance block in its own worker process
  (:mod:`repro.core.shard_workers`) so the coordinator holds no block
  at all.  Strategic queries (``service_costs``, ``best_response``,
  ``gain_sweep``, ``find_improving_flip``) are inherited unchanged — they
  are functions of the per-peer service matrices, which the sharded store
  serves bit-identically — so dynamics trajectories are **identical** to
  the unsharded evaluator for every shard count, execution backend, and
  store kind.  Cost queries (``social_cost``, ``peer_costs``) stream
  shard by shard instead of materializing the full stretch matrix.

Exactness
---------

Per-row quantities are bitwise identical to the unsharded evaluator:
each distance row is produced by the same per-source Dijkstra whichever
shard owns it, and row reductions (``peer_costs``) reduce over one row
at a time.  The one caveat is the social cost's *scalar* stretch total:
the sharded evaluator sums per-block partial sums, which may differ from
the unsharded full-matrix ``stretch.sum()`` in the last floating-point
ulp (summation order).  Strategic queries never consume that scalar, so
trajectories are unaffected; tests compare it with a 1e-12 relative
tolerance.

The trade-off being bought: a released (non-resident) shard block must
be rebuilt in full on its next query — sharding spends recompute to
bound memory, exactly like the spill store does for ``W`` matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.costs import CostBreakdown, stretch_from_distance_rows
from repro.core.evaluator import GameEvaluator
from repro.core.profile import StrategyProfile
from repro.core.service_store import (
    ServiceStore,
    SharedMemoryStore,
    make_store,
)
from repro.graphs.digraph import WeightedDigraph
from repro.graphs.shortest_paths import multi_source_distances

__all__ = [
    "ShardPlan",
    "ShardedDistances",
    "ShardedStore",
    "ShardedEvaluator",
    "check_shard_options",
    "build_sharded_evaluator",
]


def check_shard_options(
    shards: Optional[int],
    placement: Optional[str] = None,
    max_resident_shards: Optional[int] = None,
    shard_hosts: Optional[Sequence[str]] = None,
) -> None:
    """Validate the shard-tuning knobs shared by dynamics/engine/churn.

    Fails fast with the same messages everywhere so a bad combination —
    a placement without shards, a nonsensical residency budget — dies at
    construction instead of deep inside :class:`ShardPlan` or being
    silently clamped.
    """
    if shards is not None and shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if placement is not None:
        from repro.core.shard_workers import PLACEMENT_SPECS

        if placement not in PLACEMENT_SPECS:
            raise ValueError(
                f"unknown shard placement {placement!r}; expected one of "
                f"{PLACEMENT_SPECS}"
            )
        if shards is None:
            raise ValueError(
                "shard_placement requires shards= (there is nothing to "
                "place without a shard count)"
            )
    if shard_hosts is not None and len(list(shard_hosts)) > 0:
        if placement != "socket":
            raise ValueError(
                "shard_hosts requires shard_placement='socket' (hosts "
                "name the shard servers socket placement connects to)"
            )
        from repro.core.transport import parse_address

        for host in shard_hosts:
            parse_address(host)  # fail fast on malformed specs
    if max_resident_shards is not None:
        if max_resident_shards < 1:
            raise ValueError(
                f"max_resident_shards must be >= 1, got {max_resident_shards}"
            )
        if shards is None:
            raise ValueError(
                "max_resident_shards requires shards= (it budgets the "
                "resident row blocks of a sharded evaluator)"
            )
        if shards is not None and max_resident_shards > shards:
            raise ValueError(
                f"max_resident_shards ({max_resident_shards}) cannot "
                f"exceed shards ({shards})"
            )


def build_sharded_evaluator(
    game,
    profile: Optional[StrategyProfile] = None,
    *,
    shards: int,
    placement: Optional[str] = None,
    max_resident_shards: Optional[int] = None,
    shard_hosts: Optional[Sequence[str]] = None,
    store="memory",
    dynamic_repair: bool = True,
    fault_plan=None,
    recovery=None,
) -> "ShardedEvaluator":
    """A :class:`ShardedEvaluator` from the optional driver-level knobs.

    ``None`` placement/residency mean the class defaults — the one spot
    where the drivers' "not configured" convention is translated, so
    every layer (dynamics, engine, churn, ``make_evaluator``) builds
    identical evaluators from identical flags.
    """
    check_shard_options(shards, placement, max_resident_shards, shard_hosts)
    return ShardedEvaluator(
        game,
        profile,
        store=store,
        shards=shards,
        max_resident_shards=(
            1 if max_resident_shards is None else max_resident_shards
        ),
        placement="local" if placement is None else placement,
        shard_hosts=shard_hosts,
        dynamic_repair=dynamic_repair,
        fault_plan=fault_plan,
        recovery=recovery,
    )


@dataclass(frozen=True)
class ShardPlan:
    """Partition of peers ``0..n-1`` into ``k`` contiguous row blocks.

    Blocks are balanced to within one row (``n % k`` shards get the
    extra row, lowest-indexed first).  :meth:`owner` maps a peer to its
    shard in O(1) arithmetic — no lookup table to keep resident.
    """

    n: int
    k: int
    bounds: Tuple[Tuple[int, int], ...]

    @staticmethod
    def build(n: int, shards: int) -> "ShardPlan":
        """A plan for ``n`` peers; ``shards`` is clamped to ``[1, n]``.

        Clamping (rather than raising) keeps ``shards=4`` usable on the
        tiny epoch subgames churn produces: a 3-peer epoch simply runs
        with 3 singleton shards.
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        k = max(1, min(int(shards), n)) if n > 0 else 1
        base, extra = divmod(n, k) if n > 0 else (0, 0)
        bounds: List[Tuple[int, int]] = []
        lo = 0
        for index in range(k):
            hi = lo + base + (1 if index < extra else 0)
            bounds.append((lo, hi))
            lo = hi
        return ShardPlan(n=n, k=k, bounds=tuple(bounds))

    def owner(self, peer: int) -> int:
        """Index of the shard whose row block contains ``peer``."""
        if not 0 <= peer < self.n:
            raise IndexError(f"peer {peer} out of range [0, {self.n})")
        base, extra = divmod(self.n, self.k)
        pivot = extra * (base + 1)
        if peer < pivot:
            return peer // (base + 1)
        return extra + (peer - pivot) // base

    def shard_rows(self, shard: int) -> range:
        """The global row ids owned by ``shard``."""
        lo, hi = self.bounds[shard]
        return range(lo, hi)


class ShardedDistances:
    """Row-block shards of the overlay distance matrix, LRU-bounded.

    Each shard owns rows ``[lo, hi)``; a shard's block is built lazily
    by one multi-source Dijkstra over its own sources and repaired
    row-incrementally when :meth:`mark_dirty` touched it.  At most
    ``max_resident`` blocks are resident at once — older blocks are
    *released* (dropped, counted in ``stats.distance_block_releases``)
    and rebuilt in full on their next query.

    Residency is observable through the evaluator's stats counters:
    ``distance_resident_bytes`` / ``distance_resident_peak_bytes`` move
    with every build and release, ``distance_block_builds`` counts full
    block (re)builds, and ``distance_rows_recomputed`` counts repaired
    rows exactly as on the unsharded evaluator.

    When a :class:`~repro.graphs.dynamic_sssp.RowRepairer` is supplied
    (the evaluator's, sharing its flip log), dirty rows of resident
    blocks are patched in place O(affected) instead of re-solved; each
    block keeps its own flip-log cursor so blocks repaired at different
    times each replay exactly the flips they missed.
    """

    def __init__(
        self,
        plan: ShardPlan,
        backend: str,
        stats,
        max_resident: int = 1,
        repairer=None,
    ) -> None:
        if max_resident < 1:
            raise ValueError(
                f"max_resident must be >= 1, got {max_resident}"
            )
        self._plan = plan
        self._backend = backend
        self._stats = stats
        self._max_resident = min(plan.k, int(max_resident))
        self._blocks: List[Optional[np.ndarray]] = [None] * plan.k
        self._dirty: List[Set[int]] = [set() for _ in range(plan.k)]
        self._repairer = repairer
        self._cursors: List[int] = [0] * plan.k
        #: Resident shards in least-recently-used-first order (dict
        #: insertion order, same O(1) trick as the spill store's LRU).
        self._lru: Dict[int, None] = {}

    def reset(self) -> None:
        """Release every block (full invalidation)."""
        for shard in range(self._plan.k):
            self._release(shard, count=False)
        self._lru.clear()

    def mark_dirty(self, affected: Set[int]) -> None:
        """Route dirtied global rows to their owning shards.

        Rows of non-resident blocks are ignored: a released block is
        rebuilt in full anyway, so tracking its dirt would be wasted.
        """
        for row in affected:
            shard = self._plan.owner(row)
            if self._blocks[shard] is not None:
                self._dirty[shard].add(row)

    def block(self, shard: int, overlay: WeightedDigraph) -> np.ndarray:
        """The clean, resident row block of ``shard`` (builds/repairs).

        Treat the returned array as read-only; it may be released (and
        later rebuilt) by a subsequent call for another shard.
        """
        block = self._blocks[shard]
        lo, hi = self._plan.bounds[shard]
        if block is None:
            # Make room *before* building so the peak is max_resident
            # blocks, never max_resident + 1 (the e15 memory target
            # counts this transient).
            while len(self._lru) >= self._max_resident:
                self._release(next(iter(self._lru)))
            block = multi_source_distances(
                overlay, list(range(lo, hi)), backend=self._backend
            )
            self._blocks[shard] = block
            self._dirty[shard] = set()
            if self._repairer is not None:
                self._cursors[shard] = self._repairer.head
            self._stats.distance_block_builds += 1
            self._account(block.nbytes)
        elif self._dirty[shard]:
            rows = sorted(self._dirty[shard])
            if self._repairer is not None:
                repaired, fallbacks = self._repairer.repair_block(
                    block,
                    [row - lo for row in rows],
                    rows,
                    overlay,
                    self._cursors[shard],
                )
                self._cursors[shard] = self._repairer.head
                self._stats.distance_vertices_repaired += repaired
                self._stats.distance_full_fallbacks += fallbacks
            else:
                fresh = multi_source_distances(
                    overlay, rows, backend=self._backend
                )
                block[[row - lo for row in rows]] = fresh
            self._stats.distance_rows_recomputed += len(rows)
            self._dirty[shard] = set()
        self._touch(shard)
        return block

    def rows(
        self, peers: Sequence[int], overlay: WeightedDigraph
    ) -> np.ndarray:
        """Copies of the requested distance rows, in ``peers`` order.

        The narrow cross-shard query interface: rows are gathered shard
        by shard (so at most ``max_resident`` blocks are alive during
        assembly) into a fresh caller-owned array.
        """
        peers = list(peers)
        out = np.empty((len(peers), self._plan.n), dtype=np.float64)
        by_shard: Dict[int, List[int]] = {}
        for position, peer in enumerate(peers):
            by_shard.setdefault(self._plan.owner(peer), []).append(position)
        for shard in sorted(by_shard):
            block = self.block(shard, overlay)
            lo, _hi = self._plan.bounds[shard]
            for position in by_shard[shard]:
                out[position] = block[peers[position] - lo]
        return out

    def resident_blocks(self) -> int:
        """Number of row blocks currently held in RAM."""
        return len(self._lru)

    # -- residency ------------------------------------------------------
    def _touch(self, shard: int) -> None:
        self._lru.pop(shard, None)
        self._lru[shard] = None

    def _release(self, shard: int, count: bool = True) -> None:
        block = self._blocks[shard]
        if block is None:
            return
        self._account(-block.nbytes)
        self._blocks[shard] = None
        self._dirty[shard] = set()
        self._lru.pop(shard, None)
        if count:
            self._stats.distance_block_releases += 1

    def _account(self, delta: int) -> None:
        self._stats.account_distance(delta)


class ShardedStore(ServiceStore):
    """A service store routing each peer to its shard's sub-store.

    Every shard owns an independent
    :class:`~repro.core.service_store.ServiceStore` — so ``k`` spill
    stores each enforce their *own* byte budget, and handles returned by
    :meth:`handle` point process-pool workers directly at the owning
    shard's segment or spill-file window.  The wrapper adds routing
    only; bytes still move through the sub-stores unchanged, so the
    bit-exact round-trip contract of the store layer is preserved.
    """

    name = "sharded"

    def __init__(self, plan: ShardPlan, stores: Sequence[ServiceStore]):
        super().__init__()
        if len(stores) != plan.k:
            raise ValueError(
                f"plan has {plan.k} shards but {len(stores)} stores given"
            )
        self._plan = plan
        self._stores: List[ServiceStore] = list(stores)

    def _sub(self, key: int) -> ServiceStore:
        return self._stores[self._plan.owner(key)]

    # -- aggregate capabilities ----------------------------------------
    @property
    def shareable(self) -> bool:  # type: ignore[override]
        return all(store.shareable for store in self._stores)

    @property
    def stable_backing(self) -> bool:  # type: ignore[override]
        return all(store.stable_backing for store in self._stores)

    @property
    def chunk_budget_bytes(self) -> Optional[int]:  # type: ignore[override]
        """Tightest sub-store budget (a bulk chunk may land in one shard)."""
        budgets = [
            store.chunk_budget_bytes
            for store in self._stores
            if store.chunk_budget_bytes is not None
        ]
        return min(budgets) if budgets else None

    # -- lifecycle ------------------------------------------------------
    def bind_stats(self, stats) -> None:
        super().bind_stats(stats)
        for store in self._stores:
            store.bind_stats(stats)

    def close(self) -> None:
        for store in self._stores:
            store.close()

    # -- data plane (pure routing) -------------------------------------
    def put(self, key: int, weights: np.ndarray) -> np.ndarray:
        return self._sub(key).put(key, weights)

    def get(self, key: int) -> Optional[np.ndarray]:
        return self._sub(key).get(key)

    def write_rows(
        self, key: int, rows: Sequence[int], values: np.ndarray
    ) -> np.ndarray:
        return self._sub(key).write_rows(key, rows, values)

    def discard(self, key: int) -> None:
        self._sub(key).discard(key)

    def clear(self) -> None:
        for store in self._stores:
            store.clear()

    def keys(self) -> List[int]:
        return [key for store in self._stores for key in store.keys()]

    def handle(self, key: int) -> Optional[Tuple]:
        return self._sub(key).handle(key)

    def flush(self, keys: Optional[Sequence[int]] = None) -> None:
        if keys is None:
            for store in self._stores:
                store.flush()
            return
        by_shard: Dict[int, List[int]] = {}
        for key in keys:
            by_shard.setdefault(self._plan.owner(key), []).append(key)
        for shard, shard_keys in by_shard.items():
            self._stores[shard].flush(shard_keys)

    def resident_bytes(self) -> int:
        return sum(store.resident_bytes() for store in self._stores)

    # -- process sharing ------------------------------------------------
    def migrate_to_shared(self) -> List[int]:
        """Replace non-shareable sub-stores with shared-memory ones.

        Per-shard counterpart of the evaluator's store auto-migration
        for distributed backends: only shards whose store cannot hand
        out cross-process handles are migrated (one copy of their warm
        entries).  Returns the keys that moved to a new backing, so the
        caller can drop any views pinned to the retired buffers.
        """
        migrated: List[int] = []
        for shard, old in enumerate(self._stores):
            if old.shareable:
                continue
            new = SharedMemoryStore()
            new.bind_stats(self.stats)
            for key in old.keys():
                new.put(key, old.get(key))
                old.discard(key)
                migrated.append(key)
            old.close()
            self._stores[shard] = new
        return migrated

    @property
    def stores(self) -> Tuple[ServiceStore, ...]:
        """The per-shard sub-stores (read-mostly; for tests/diagnostics)."""
        return tuple(self._stores)


def _sharded_store(plan: ShardPlan, store) -> ShardedStore:
    """One sub-store per shard from a spec string / factory / instance."""
    if isinstance(store, ShardedStore):
        if len(store.stores) != plan.k:
            raise ValueError(
                f"sharded store has {len(store.stores)} sub-stores but the "
                f"plan needs {plan.k}"
            )
        return store
    if isinstance(store, ServiceStore):
        raise TypeError(
            "a single ServiceStore instance cannot back a sharded "
            "evaluator (each shard needs its own budget); pass a spec "
            'string ("memory"/"shared"/"spill"), a zero-argument factory '
            "returning fresh stores, or a ShardedStore"
        )
    if callable(store):
        subs = [store() for _ in range(plan.k)]
        for sub in subs:
            if not isinstance(sub, ServiceStore):
                raise TypeError(
                    f"store factory returned {type(sub).__name__}, "
                    f"expected a ServiceStore"
                )
        return ShardedStore(plan, subs)
    return ShardedStore(plan, [make_store(store) for _ in range(plan.k)])


class ShardedEvaluator(GameEvaluator):
    """Drop-in :class:`GameEvaluator` whose state is sharded ``k`` ways.

    Parameters (beyond the base class)
    ----------------------------------
    shards:
        Number of row-block shards ``k`` (clamped to ``[1, n]``, see
        :meth:`ShardPlan.build`).  Peer ``p``'s distance row and service
        matrix both live in shard ``plan.owner(p)``.
    store:
        Per-shard service store: a spec string (each shard gets its own
        fresh store of that kind — so ``"spill"`` means ``k``
        independent budgets), a zero-argument factory (called once per
        shard; use ``lambda: SpillStore(budget_bytes=...)`` for custom
        budgets), or a pre-built :class:`ShardedStore`.  A bare
        :class:`~repro.core.service_store.ServiceStore` instance is
        rejected: one shared arena would silently collapse the
        per-shard budgets this class exists to provide.
    max_resident_shards:
        How many distance row blocks may be RAM-resident at once
        (default 1 — peak resident distance bytes ~ ``n^2/k * 8``).
        Local placement only: a shard worker process always holds
        exactly its own block, which *is* the per-process bound.
    placement:
        Where the distance row blocks live: ``"local"`` (default — in
        this process, LRU-bounded by ``max_resident_shards``),
        ``"process"`` — one long-lived worker process per shard
        (:class:`~repro.core.shard_workers.ShardWorkerPool`) serving
        ``distance_rows`` and O(n/k) stretch reductions over a narrow
        request/reply transport, so the coordinator process holds *no*
        distance blocks at all — or ``"socket"``, the same worker pool
        behind :class:`~repro.core.transport.SocketTransport`
        connections to standalone :mod:`repro.shard_server` processes
        (auto-spawned on this host by default; see ``shard_hosts``).
        Strategic queries are identical in every placement (they never
        touch the distance layer); cost queries stream the same
        per-shard reductions, computed from the same bytes.
    shard_hosts:
        Socket placement only: ``"host:port"`` / ``"unix:/path"``
        addresses of running shard servers; shards round-robin across
        them.  ``None`` (default) auto-spawns one private same-host
        server, so no external setup is needed.
    dynamic_repair:
        Inherited switch (see :class:`~repro.core.evaluator.
        GameEvaluator`): when True the resident row blocks — local ones
        here, per-worker ones under process placement — are patched in
        place by the incremental updater instead of re-solved.

    Everything else — the caching/invalidation contract, the gain-sweep
    batch APIs, the memo effect bound, backend dispatch — is inherited.
    Trajectory identity with the unsharded evaluator holds for every
    ``(shards, backend, store)`` combination because strategic queries
    are functions of the per-peer service matrices alone, and stores
    only move bytes.  See the module docstring for the one scalar
    (social-cost stretch total) that may differ in the last ulp.
    """

    def __init__(
        self,
        game,
        profile: Optional[StrategyProfile] = None,
        backend: str = "auto",
        max_cached_services: int = 512,
        store="memory",
        shards: int = 2,
        max_resident_shards: int = 1,
        placement: str = "local",
        shard_hosts: Optional[Sequence[str]] = None,
        dynamic_repair: bool = True,
        fault_plan=None,
        recovery=None,
    ) -> None:
        from repro.core.shard_workers import PLACEMENT_SPECS

        # Owned-resource slots first: close() must be a no-op on an
        # instance whose __init__ died in the validation below.
        self._shard_dist: Optional[ShardedDistances] = None
        self._worker_pool = None

        if placement not in PLACEMENT_SPECS:
            raise ValueError(
                f"unknown shard placement {placement!r}; expected one of "
                f"{PLACEMENT_SPECS}"
            )
        if shard_hosts and placement != "socket":
            raise ValueError(
                "shard_hosts requires shard_placement='socket' (hosts "
                "name the shard servers socket placement connects to)"
            )
        if fault_plan is not None and not fault_plan.is_null:
            if placement not in ("process", "socket"):
                raise ValueError(
                    "fault_plan requires a worker placement ('process' or "
                    "'socket'); local placement has no transports to fault"
                )
        if max_resident_shards < 1:
            raise ValueError(
                f"max_resident_shards must be >= 1, got {max_resident_shards}"
            )
        plan = ShardPlan.build(game.n, shards)
        self._plan = plan
        self._placement = placement
        #: Per-shard ``(stretch row sums, stretch total)`` — the O(n/k)
        #: reductions cost queries need — so repeat queries on an
        #: unchanged profile touch no distance blocks at all.  ``None``
        #: entries are stale (dirtied rows or a reset).
        self._shard_sums: List[Optional[Tuple[np.ndarray, float]]] = []
        super().__init__(
            game,
            profile=None,
            backend=backend,
            max_cached_services=max_cached_services,
            store=_sharded_store(plan, store),
            dynamic_repair=dynamic_repair,
        )
        if placement in ("process", "socket"):
            from repro.core.shard_workers import PipeTransport, ShardWorkerPool

            if placement == "socket":
                from repro.core.transport import SocketTransportFactory

                factory = SocketTransportFactory(shard_hosts)
            else:
                factory = PipeTransport
            if fault_plan is not None and not fault_plan.is_null:
                from repro.faults.injection import FaultyTransportFactory

                factory = FaultyTransportFactory(factory, fault_plan)
            self._worker_pool = ShardWorkerPool(
                plan,
                game.distance_matrix,
                backend,
                transport_factory=factory,
                dynamic_repair=dynamic_repair,
                recovery=recovery,
            )
        else:
            self._shard_dist = ShardedDistances(
                plan,
                backend,
                self.stats,
                max_resident_shards,
                repairer=self._repairer,
            )
        self._shard_sums = [None] * plan.k
        if profile is not None:
            self.set_profile(profile)

    # ------------------------------------------------------------------
    @property
    def plan(self) -> ShardPlan:
        """The row-block partition this evaluator runs under."""
        return self._plan

    @property
    def num_shards(self) -> int:
        return self._plan.k

    @property
    def placement(self) -> str:
        """Where the blocks live: ``"local"``/``"process"``/``"socket"``."""
        return self._placement

    @property
    def worker_pool(self):
        """The shard worker pool (``None`` under local placement)."""
        return self._worker_pool

    def _resolve_solver_backend(self, backend, workers: int):
        """Bind the ``"shard"`` backend spec to this evaluator's pool.

        Drivers resolve backends at construction time, before any
        evaluator (or worker pool) exists, so a
        :class:`~repro.core.shard_workers.ShardSolverBackend` arrives
        unbound; binding per sweep also keeps it correct across the
        per-epoch evaluators churn builds.
        """
        from repro.core.backends import resolve_backend

        resolved = resolve_backend(backend, workers)
        if getattr(resolved, "wants_tasks", False):
            if self._worker_pool is None:
                raise ValueError(
                    "backend 'shard' routes solves to shard workers; "
                    "build the evaluator with shard_placement 'process' "
                    "or 'socket'"
                )
            resolved.bind_pool(self._worker_pool)
        return resolved

    def shard_worker_stats(self) -> Optional[List[Dict[str, int]]]:
        """Per-worker distance counters, or ``None`` under local placement.

        The process-placement counterpart of the ``distance_*`` fields
        of :class:`~repro.core.evaluator.EvaluatorStats` (which stay 0
        on this evaluator's coordinator side — no block is ever resident
        here): one dict per shard worker with ``block_builds``,
        ``rows_recomputed``, ``vertices_repaired``, ``full_fallbacks``,
        ``resident_bytes`` and ``resident_peak_bytes``.
        """
        if self._worker_pool is None:
            return None
        return self._worker_pool.worker_stats()

    # ------------------------------------------------------------------
    # Distance layer: sharded instead of monolithic
    # ------------------------------------------------------------------
    def _reset(self, profile: StrategyProfile) -> None:
        super()._reset(profile)
        if self._shard_dist is not None:
            self._shard_dist.reset()
        if self._worker_pool is not None:
            # The model spec rides the reset broadcast so shard-side
            # solver pools price with the coordinator's cost model (the
            # respawn replay re-sends it; the socket init handshake is
            # untouched).
            model = self._cost_model
            self._worker_pool.reset(
                profile, None if model is None else model.spec()
            )
        self._shard_sums = [None] * self._plan.k

    def _rebind_single(self, peer: int, profile: StrategyProfile) -> None:
        super()._rebind_single(peer, profile)
        if self._worker_pool is not None:
            # Ship only (peer, new targets); every worker re-derives the
            # affected rows from its own overlay with the same BFS the
            # coordinator just ran, so the dirty sets agree exactly.
            self._worker_pool.rebind(peer, profile.strategy(peer))

    def _mark_distance_dirty(self, affected: Set[int]) -> None:
        if self._shard_dist is not None:
            self._shard_dist.mark_dirty(affected)
        # Sum caches go stale for *every* affected row's shard — also
        # for non-resident blocks, whose dirt the distance manager
        # ignores (they rebuild in full anyway).
        if self._shard_sums:
            for shard in {self._plan.owner(row) for row in affected}:
                self._shard_sums[shard] = None

    def distance_rows(self, peers: Sequence[int]) -> np.ndarray:
        """Overlay-distance rows for ``peers`` (fresh, caller-owned).

        The narrow cross-shard interface: each row is served by its
        owning shard (built or repaired on demand).  Under local
        placement only ``max_resident_shards`` blocks are alive while
        gathering; under process placement the rows come back over the
        worker transport and the coordinator holds no block at all.
        Values are bitwise identical to the same rows of the unsharded
        :meth:`~repro.core.evaluator.GameEvaluator.overlay_distances`.
        """
        if self._worker_pool is not None:
            return self._worker_pool.rows(peers)
        return self._shard_dist.rows(peers, self.overlay)

    def overlay_distances(self) -> np.ndarray:
        """Full matrix, assembled across shards — facade compatibility.

        Materializes all ``n^2`` entries transiently (defeating the
        resident-memory bound for the duration of the call); sharded
        code paths should prefer :meth:`distance_rows` or the streaming
        cost queries below.
        """
        return self.distance_rows(range(self._n))

    def stretches(self) -> np.ndarray:
        """Full stretch matrix — facade compatibility, not cached.

        Like :meth:`overlay_distances` this is transiently O(n^2);
        :meth:`social_cost` / :meth:`peer_costs` stream per shard and
        should be preferred.
        """
        from repro.core.costs import stretch_from_distances

        return stretch_from_distances(self._dmat, self.overlay_distances())

    def _stretch_block(self, shard: int) -> np.ndarray:
        """Stretch rows of one shard (bitwise-identical row values)."""
        lo, hi = self._plan.bounds[shard]
        block = self._shard_dist.block(shard, self.overlay)
        return stretch_from_distance_rows(
            self._dmat[lo:hi], block, range(lo, hi)
        )

    def _shard_stretch_sums(self, shard: int) -> Tuple[np.ndarray, float]:
        """``(row sums, total)`` of one shard's stretch block (cached).

        The reductions are computed from the full block exactly as the
        streaming queries always did, then kept as an O(n/k) vector +
        scalar so clean shards answer repeat cost queries without
        rebuilding released distance blocks.
        """
        cached = self._shard_sums[shard]
        if cached is None:
            if self._worker_pool is not None:
                cached = self._worker_pool.stretch_sums(shard)
            else:
                stretch = self._stretch_block(shard)
                cached = (stretch.sum(axis=1), float(stretch.sum()))
            self._shard_sums[shard] = cached
        return cached

    def _prefetch_stretch_sums(self) -> None:
        """Refill every stale shard-sum cache in one pipelined fan-out.

        Worker placements only: a full cost query after a reset/rebind
        needs all ``k`` reductions anyway, and one broadcast overlaps
        the workers' block builds instead of serializing them.
        """
        if self._worker_pool is None:
            return
        stale = [
            shard
            for shard in range(self._plan.k)
            if self._shard_sums[shard] is None
        ]
        if not stale:
            return
        for shard, sums in self._worker_pool.stretch_sums_all(stale).items():
            self._shard_sums[shard] = sums

    def social_cost(self) -> CostBreakdown:
        """Social cost, streamed one shard block at a time.

        The stretch total is accumulated per block (served from the
        per-shard sum cache when clean), so at most
        ``max_resident_shards`` distance blocks are resident during the
        query.  The scalar may differ from the unsharded evaluator's
        full-matrix sum in the last ulp (summation order); see the
        module docstring.
        """
        profile = self.profile
        self._prefetch_stretch_sums()
        stretch_total = 0.0
        for shard in range(self._plan.k):
            stretch_total += self._shard_stretch_sums(shard)[1]
        extra = 0.0
        if self._cost_model is not None:
            extra = self._cost_model.social_extra(profile)
        return CostBreakdown(
            link_cost=self._alpha * profile.num_links,
            stretch_cost=stretch_total,
            extra_cost=extra,
        )

    def peer_costs(self) -> np.ndarray:
        """Individual costs ``c_i(s)``, streamed one shard at a time.

        Row sums reduce over one stretch row at a time, so every entry
        is bitwise identical to the unsharded evaluator's (and is
        served from the per-shard sum cache when the shard is clean).
        """
        profile = self.profile
        degrees = np.array(
            [profile.out_degree(i) for i in range(self._n)], dtype=float
        )
        if self._n == 0:
            return degrees
        self._prefetch_stretch_sums()
        sums = np.concatenate(
            [
                self._shard_stretch_sums(shard)[0]
                for shard in range(self._plan.k)
            ]
        )
        costs = self._alpha * degrees + sums
        if self._cost_model is not None:
            term = self._cost_model.per_peer_term(profile)
            if term is not None:
                costs = costs + term
        return costs

    # ------------------------------------------------------------------
    # Store layer: per-shard migration for distributed backends
    # ------------------------------------------------------------------
    def _ensure_shareable_store(self) -> None:
        if self._store.shareable:
            return
        for peer in self._store.migrate_to_shared():
            entry = self._service.get(peer)
            if entry is not None:
                entry.service = None  # view points at the retired buffer

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._shard_dist is not None:
            self._shard_dist.reset()
        if self._worker_pool is not None:
            self._worker_pool.close()
        super().close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bound = self._profile is not None
        return (
            f"ShardedEvaluator(n={self._n}, alpha={self._alpha}, "
            f"shards={self._plan.k}, placement={self._placement!r}, "
            f"bound={bound}, cached_services={len(self._service)})"
        )
