"""The best-response graph: global convergence structure of tiny games.

The best-response *graph* has one node per strategy profile and one edge
``s -> s'`` for every peer whose (unique, tie-broken) best response moves
the profile from ``s`` to ``s'``.  Its structure answers global questions
a single dynamics run cannot:

* **Sinks** (nodes with no outgoing improvement edge) are exactly the
  pure Nash equilibria.
* If the graph has **no sink**, every best-response trajectory — from
  *any* starting profile, under *any* activation order — runs forever.
  For the paper's Theorem 5.1 witness this is the strongest possible
  non-convergence statement, strictly beyond "the runs we tried cycled".
* The **terminal strongly connected components** are the attractors the
  dynamics can end up circling in; for the witness there is a single
  attractor realizing the paper's Figure 3 loop.

Everything is computed fully vectorized over encoded profiles (see
:mod:`repro.core.exhaustive` for the encoding), so ``n = 5`` — a million
nodes, five million potential edges — takes seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cost_model import CostModel, resolve_cost_model
from repro.core.exhaustive import (
    MAX_EXHAUSTIVE_PEERS,
    decode_profile,
    profile_costs_batch,
)
from repro.core.profile import StrategyProfile

__all__ = [
    "ResponseGraphAnalysis",
    "best_response_moves",
    "analyze_response_graph",
    "terminal_components",
]

_RELATIVE_TOLERANCE = 1e-9


def best_response_moves(
    distance_matrix: np.ndarray,
    alpha: float,
    chunk_size: int = 1 << 13,
    rtol: float = _RELATIVE_TOLERANCE,
    cost_model: Optional[CostModel] = None,
) -> np.ndarray:
    """Best-response successor table over all profiles.

    Returns an int64 array ``moves`` of shape ``(2^(n(n-1)), n)`` where
    ``moves[s, i]`` is the profile reached when peer ``i`` switches to its
    best response against ``s`` — or ``s`` itself when peer ``i`` is
    already best-responding (ties favor the status quo, matching
    :data:`repro.core.best_response.RELATIVE_TOLERANCE` semantics).

    ``cost_model`` is accepted for interface symmetry with the rest of
    the landscape machinery and validated against ``alpha``, but the
    table is computed from the base game's costs: a conforming model's
    per-peer term is constant w.r.t. each peer's own strategy (the
    externality contract of :mod:`repro.core.cost_model`), so the
    successor table is provably identical for every model — computing it
    base-priced is exactness, not an approximation.
    """
    resolve_cost_model(cost_model, alpha)
    dmat = np.asarray(distance_matrix, dtype=float)
    n = dmat.shape[0]
    if n > MAX_EXHAUSTIVE_PEERS:
        raise ValueError(
            f"response graph supports n <= {MAX_EXHAUSTIVE_PEERS}, got {n}"
        )
    if n <= 1:
        return np.zeros((1, max(n, 1)), dtype=np.int64)
    bits = n - 1
    num_strategies = 1 << bits
    num_profiles = 1 << (n * bits)

    costs = np.empty((num_profiles, n))
    for start in range(0, num_profiles, chunk_size):
        stop = min(start + chunk_size, num_profiles)
        ids = np.arange(start, stop, dtype=np.int64)
        costs[start:stop] = profile_costs_batch(ids, dmat, alpha)

    all_ids = np.arange(num_profiles, dtype=np.int64)
    moves = np.empty((num_profiles, n), dtype=np.int64)
    for i in range(n):
        shift = i * bits
        low = 1 << shift
        high = num_profiles // (low * num_strategies)
        # Column of peer i's costs arranged by (high, own strategy, low).
        column = costs[:, i].reshape(high, num_strategies, low)
        best_strategy = column.argmin(axis=1)  # (high, low)
        best_cost = np.take_along_axis(
            column, best_strategy[:, None, :], axis=1
        )[:, 0, :]
        current_strategy = (
            (all_ids >> shift) & (num_strategies - 1)
        ).reshape(high, num_strategies, low)
        current_cost = costs[:, i].reshape(high, num_strategies, low)
        # Keep the status quo unless the best strictly beats it.
        tolerance = rtol * np.maximum(1.0, np.abs(best_cost))
        improves = current_cost > (best_cost + tolerance)[:, None, :]
        chosen = np.where(
            improves, best_strategy[:, None, :], current_strategy
        )
        cleared = all_ids & ~np.int64((num_strategies - 1) << shift)
        moves[:, i] = cleared + (chosen.reshape(num_profiles) << shift)
    return moves


@dataclass(frozen=True)
class ResponseGraphAnalysis:
    """Global structure of a tiny game's best-response graph.

    Attributes
    ----------
    n / alpha:
        Instance parameters.
    num_profiles:
        Number of nodes (``2^(n(n-1))``).
    sink_ids:
        Profiles with no improving move — exactly the pure Nash
        equilibria.  Empty for Theorem 5.1 witnesses.
    num_moving_edges:
        Directed improvement edges (excluding self-loops).
    attractor_ids:
        One terminal strongly connected component the greedy trajectory
        reaches from the empty profile (a certified attractor cycle when
        there are no sinks).  ``None`` when a sink exists instead.
    """

    n: int
    alpha: float
    num_profiles: int
    sink_ids: Tuple[int, ...]
    num_moving_edges: int
    attractor_ids: Optional[Tuple[int, ...]]

    @property
    def has_sink(self) -> bool:
        """True when some profile absorbs the dynamics (a pure NE)."""
        return len(self.sink_ids) > 0

    @property
    def diverges_from_everywhere(self) -> bool:
        """True when NO trajectory can ever converge (no sinks at all)."""
        return not self.has_sink

    def sinks(self) -> List[StrategyProfile]:
        """Decode the sink profiles (the pure Nash equilibria)."""
        return [decode_profile(pid, self.n) for pid in self.sink_ids]

    def attractor(self) -> List[StrategyProfile]:
        """Decode the certified attractor cycle (empty when a sink exists)."""
        if self.attractor_ids is None:
            return []
        return [decode_profile(pid, self.n) for pid in self.attractor_ids]


def _greedy_attractor(moves: np.ndarray) -> Tuple[int, ...]:
    """Follow single-peer improvements from profile 0 until a state repeats.

    Deterministic pilot trajectory: at each profile take the improving
    move of the lowest-indexed improving peer.  Because every node has at
    least one improving move (no sinks), the walk must eventually repeat
    a profile; the segment between the repeats is an attractor cycle in
    the best-response graph.
    """
    seen: Dict[int, int] = {}
    trail: List[int] = []
    current = 0
    while current not in seen:
        seen[current] = len(trail)
        trail.append(current)
        successors = moves[current]
        next_profile = current
        for peer in range(moves.shape[1]):
            if successors[peer] != current:
                next_profile = int(successors[peer])
                break
        if next_profile == current:  # pragma: no cover - sink guard
            return (current,)
        current = next_profile
    return tuple(trail[seen[current]:])


def terminal_components(
    moves: np.ndarray, max_components: int = 64
) -> List[Tuple[int, ...]]:
    """Terminal strongly connected components of the best-response graph.

    A terminal SCC has no improvement edge leaving it; these are the
    *attractors* of best-response dynamics — singleton terminal SCCs are
    the pure Nash equilibria, larger ones are inescapable oscillation
    regions.  Computed with scipy's SCC on the sparse move graph
    (self-loops dropped), then filtered to components without outgoing
    edges.  Returns at most ``max_components`` components, each as a
    sorted tuple of profile ids.
    """
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import connected_components

    num_profiles, n = moves.shape
    all_ids = np.arange(num_profiles, dtype=np.int64)
    sources = np.repeat(all_ids, n)
    targets = moves.reshape(-1)
    moving = targets != sources
    sources, targets = sources[moving], targets[moving]
    graph = csr_matrix(
        (np.ones(len(sources), dtype=np.int8), (sources, targets)),
        shape=(num_profiles, num_profiles),
    )
    num_components, labels = connected_components(
        graph, directed=True, connection="strong"
    )
    # A component is terminal iff no member has an edge to another
    # component.  Sinks (no outgoing edges at all) are terminal too.
    has_external_edge = np.zeros(num_components, dtype=bool)
    cross = labels[sources] != labels[targets]
    has_external_edge[np.unique(labels[sources[cross]])] = True
    terminal_labels = np.nonzero(~has_external_edge)[0]
    components: List[Tuple[int, ...]] = []
    for label in terminal_labels[:max_components]:
        members = np.nonzero(labels == label)[0]
        components.append(tuple(int(x) for x in members))
    return components


def analyze_response_graph(
    distance_matrix: np.ndarray,
    alpha: float,
    chunk_size: int = 1 << 13,
    cost_model: Optional[CostModel] = None,
) -> ResponseGraphAnalysis:
    """Analyze the full best-response graph of a tiny game.

    Computes all sinks (pure Nash equilibria) and, when none exist, walks
    to a certified attractor cycle.  ``diverges_from_everywhere`` is the
    machine-checked statement "selfish dynamics cannot converge from any
    start under any activation order" — the strongest reading of the
    paper's Theorem 5.1.  ``cost_model`` is validated and forwarded to
    :func:`best_response_moves`, where the graph is provably
    model-independent (see its docstring).
    """
    dmat = np.asarray(distance_matrix, dtype=float)
    n = dmat.shape[0]
    moves = best_response_moves(
        dmat, alpha, chunk_size=chunk_size, cost_model=cost_model
    )
    num_profiles = moves.shape[0]
    all_ids = np.arange(num_profiles, dtype=np.int64)
    is_sink = (moves == all_ids[:, None]).all(axis=1)
    sink_ids = tuple(int(x) for x in np.nonzero(is_sink)[0])
    num_moving_edges = int((moves != all_ids[:, None]).sum())
    attractor: Optional[Tuple[int, ...]] = None
    if not sink_ids and n > 1:
        attractor = _greedy_attractor(moves)
    return ResponseGraphAnalysis(
        n=n,
        alpha=alpha,
        num_profiles=num_profiles,
        sink_ids=sink_ids,
        num_moving_edges=num_moving_edges,
        attractor_ids=attractor,
    )
