"""Bounding and computing the socially optimal topology.

The optimum of ``C(G) = alpha |E| + sum stretch`` is NP-hard to compute in
general, so the library offers three levels:

* a provable **lower bound** ``alpha * n + n(n-1)`` (every peer needs at
  least one out-link for finite cost, and every stretch is at least 1) —
  the ``Omega(alpha n + n^2)`` bound the paper uses;
* heuristic **upper bounds** from a portfolio of candidate topologies
  (complete graph, medoid star, nearest-neighbor chain, MST-like overlay)
  optionally polished by single-link local search;
* **exact** optimum by exhaustive enumeration on tiny instances, used to
  validate the heuristics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.game import TopologyGame
from repro.core.profile import StrategyProfile

__all__ = [
    "OptimumEstimate",
    "social_cost_lower_bound",
    "candidate_topologies",
    "optimum_upper_bound",
    "optimum_exact",
    "local_search_improve",
]


@dataclass(frozen=True)
class OptimumEstimate:
    """A bracket around the optimal social cost.

    ``lower <= C(OPT) <= upper`` with ``profile`` achieving ``upper``.
    """

    lower: float
    upper: float
    profile: StrategyProfile
    source: str

    @property
    def gap(self) -> float:
        """Relative gap between the bracket ends."""
        if self.lower <= 0:
            return math.inf
        return self.upper / self.lower - 1.0


def social_cost_lower_bound(alpha: float, n: int) -> float:
    """``alpha * n + n(n-1)``: the paper's ``Omega(alpha n + n^2)`` bound.

    For ``n >= 2`` every peer needs out-degree at least 1 to reach anyone
    (so at least ``n`` links exist) and each of the ``n(n-1)`` ordered
    pairs has stretch at least 1.
    """
    if n <= 1:
        return 0.0
    return alpha * n + n * (n - 1)


# ----------------------------------------------------------------------
# Candidate portfolio
# ----------------------------------------------------------------------
def _nearest_neighbor_chain(dmat: np.ndarray) -> List[int]:
    """Greedy nearest-neighbor ordering of the points (TSP-style)."""
    n = dmat.shape[0]
    order = [0]
    remaining = set(range(1, n))
    while remaining:
        last = order[-1]
        nxt = min(remaining, key=lambda j: dmat[last, j])
        order.append(nxt)
        remaining.remove(nxt)
    return order


def _chain_profile(order: List[int], n: int) -> StrategyProfile:
    links = {i: set() for i in range(n)}
    for a, b in zip(order, order[1:]):
        links[a].add(b)
        links[b].add(a)
    return StrategyProfile.from_dict(n, links)


def _star_profile(center: int, n: int) -> StrategyProfile:
    links = {i: {center} for i in range(n) if i != center}
    links[center] = set(range(n)) - {center}
    return StrategyProfile.from_dict(n, links)


def _mst_profile(dmat: np.ndarray) -> StrategyProfile:
    """Bidirected minimum spanning tree over the metric (Prim)."""
    n = dmat.shape[0]
    if n <= 1:
        return StrategyProfile.empty(n)
    in_tree = [False] * n
    in_tree[0] = True
    best_edge = [(float(dmat[0, j]), 0) for j in range(n)]
    links = {i: set() for i in range(n)}
    for _ in range(n - 1):
        j = min(
            (j for j in range(n) if not in_tree[j]),
            key=lambda j: best_edge[j][0],
        )
        weight, parent = best_edge[j]
        links[parent].add(j)
        links[j].add(parent)
        in_tree[j] = True
        for k in range(n):
            if not in_tree[k] and dmat[j, k] < best_edge[k][0]:
                best_edge[k] = (float(dmat[j, k]), j)
    return StrategyProfile.from_dict(n, links)


def candidate_topologies(
    game: TopologyGame,
) -> List[Tuple[str, StrategyProfile]]:
    """The heuristic portfolio evaluated by :func:`optimum_upper_bound`."""
    n = game.n
    dmat = game.distance_matrix
    candidates: List[Tuple[str, StrategyProfile]] = []
    if n <= 1:
        return [("empty", StrategyProfile.empty(n))]
    candidates.append(("complete", StrategyProfile.complete(n)))
    medoid = int(np.argmin(dmat.sum(axis=1)))
    candidates.append(("star", _star_profile(medoid, n)))
    candidates.append(
        ("nn-chain", _chain_profile(_nearest_neighbor_chain(dmat), n))
    )
    candidates.append(("mst", _mst_profile(dmat)))
    return candidates


def local_search_improve(
    game: TopologyGame,
    profile: StrategyProfile,
    max_passes: int = 3,
) -> StrategyProfile:
    """Single-link add/remove local search on the social cost.

    Each pass tries every possible link flip and keeps the best improving
    one; stops at a local optimum or after ``max_passes`` passes.  This is
    an ``O(n^2)``-moves-per-pass polisher, intended for small instances.
    """
    n = game.n
    best = profile
    best_cost = game.social_cost(best).total
    for _ in range(max_passes):
        improved = False
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                flipped = (
                    best.without_link(i, j)
                    if best.has_link(i, j)
                    else best.with_link(i, j)
                )
                cost = game.social_cost(flipped).total
                if cost < best_cost - 1e-12:
                    best, best_cost = flipped, cost
                    improved = True
        if not improved:
            break
    return best


def optimum_upper_bound(
    game: TopologyGame, polish: bool = False
) -> OptimumEstimate:
    """Best social cost over the candidate portfolio (optionally polished).

    The returned estimate brackets the true optimum:
    ``lower`` is :func:`social_cost_lower_bound`, ``upper`` is achieved by
    the returned profile.
    """
    best_profile: Optional[StrategyProfile] = None
    best_cost = math.inf
    best_name = "none"
    for name, profile in candidate_topologies(game):
        cost = game.social_cost(profile).total
        if cost < best_cost:
            best_profile, best_cost, best_name = profile, cost, name
    assert best_profile is not None
    if polish and game.n >= 2:
        polished = local_search_improve(game, best_profile)
        polished_cost = game.social_cost(polished).total
        if polished_cost < best_cost:
            best_profile, best_cost = polished, polished_cost
            best_name += "+local-search"
    return OptimumEstimate(
        lower=social_cost_lower_bound(game.alpha, game.n),
        upper=best_cost,
        profile=best_profile,
        source=best_name,
    )


def optimum_exact(game: TopologyGame, max_profiles: int = 300_000) -> OptimumEstimate:
    """Exact optimum by enumerating all profiles (tiny ``n`` only)."""
    from repro.core.equilibrium import enumerate_profiles

    n = game.n
    num_profiles = 2 ** (n * (n - 1)) if n > 1 else 1
    if num_profiles > max_profiles:
        raise ValueError(
            f"exact optimum over {num_profiles} profiles exceeds "
            f"max_profiles={max_profiles}; use optimum_upper_bound instead"
        )
    best_profile = StrategyProfile.empty(n)
    best_cost = game.social_cost(best_profile).total
    for profile in enumerate_profiles(n):
        cost = game.social_cost(profile).total
        if cost < best_cost:
            best_profile, best_cost = profile, cost
    return OptimumEstimate(
        lower=best_cost, upper=best_cost, profile=best_profile, source="exact"
    )
