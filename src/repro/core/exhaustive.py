"""Vectorized exhaustive Nash-equilibrium analysis for tiny games.

Theorem 5.1 of the paper is an *existence* claim: there are metric spaces
with no pure Nash equilibrium.  Certifying such a claim computationally
requires checking **every** strategy profile, of which there are
``2^(n(n-1))``.  The straightforward enumeration in
:func:`repro.core.equilibrium.find_equilibria_exhaustive` verifies one
profile at a time and becomes impractical around ``n = 4``; this module
instead evaluates *all* profiles in bulk numpy tensor operations, which
makes ``n = 5`` (about one million profiles) take seconds instead of hours.
``n = 5`` is exactly the size of the paper's Figure 2 instance with one
peer per cluster.

How it works
------------

A profile is encoded as an ``n(n-1)``-bit integer: peer ``i`` owns bits
``i*(n-1) .. (i+1)*(n-1) - 1``, one per potential target (targets sorted
ascending, skipping ``i`` itself).  For a batch of profile ids the overlay
adjacency tensors are built by bit extraction, all-pairs shortest paths are
computed by min-plus matrix squaring (``ceil(log2(n-1))`` squarings reach
every simple path), and the individual cost of every peer in every profile
follows from the stretch tensor.

The Nash check then exploits the encoding: for peer ``i`` the profile id
splits into ``(high, own_strategy, low)``, so reshaping the cost column of
peer ``i`` to ``(high, 2^(n-1), low)`` and taking the minimum over the
middle axis yields the best achievable cost against every *context* (the
other peers' strategies) at once.  A profile is a pure Nash equilibrium
iff every peer's cost equals its context minimum (up to relative
tolerance).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cost_model import CostModel, resolve_cost_model
from repro.core.profile import StrategyProfile

__all__ = [
    "MAX_EXHAUSTIVE_PEERS",
    "encode_profile",
    "decode_profile",
    "profile_costs_batch",
    "ExhaustiveResult",
    "exhaustive_equilibria",
    "EncodedDynamicsResult",
    "encoded_best_response_dynamics",
]

#: Largest ``n`` the exhaustive tensor sweep accepts (``2^(n(n-1))``
#: profiles; ``n = 5`` is ~1M profiles and a few seconds of work, ``n = 6``
#: would be ~1G profiles and is out of reach).
MAX_EXHAUSTIVE_PEERS = 5

_RELATIVE_TOLERANCE = 1e-9


def _bit_layout(n: int) -> List[Tuple[int, int]]:
    """Map bit position -> (owner, target) for the profile encoding."""
    layout: List[Tuple[int, int]] = []
    for i in range(n):
        for j in range(n):
            if j != i:
                layout.append((i, j))
    return layout


def encode_profile(profile: StrategyProfile) -> int:
    """Encode a profile as its integer id (inverse of :func:`decode_profile`)."""
    n = profile.n
    bits = 0
    for pos, (i, j) in enumerate(_bit_layout(n)):
        if profile.has_link(i, j):
            bits |= 1 << pos
    return bits


def decode_profile(profile_id: int, n: int) -> StrategyProfile:
    """Decode an integer id back into a :class:`StrategyProfile`."""
    num_bits = n * (n - 1)
    if not 0 <= profile_id < (1 << num_bits):
        raise ValueError(
            f"profile id {profile_id} out of range for n={n} "
            f"(needs 0 <= id < 2^{num_bits})"
        )
    strategies: List[set] = [set() for _ in range(n)]
    for pos, (i, j) in enumerate(_bit_layout(n)):
        if (profile_id >> pos) & 1:
            strategies[i].add(j)
    return StrategyProfile(strategies)


def _min_plus_closure(adjacency: np.ndarray, n: int) -> np.ndarray:
    """Batched all-pairs shortest paths by repeated min-plus squaring.

    ``adjacency`` has shape ``(batch, n, n)`` with ``inf`` for absent edges
    and a zero diagonal.  ``ceil(log2(n-1))`` squarings cover every simple
    path (at most ``n - 1`` edges).
    """
    dist = adjacency
    if n <= 2:
        return dist
    squarings = max(1, math.ceil(math.log2(n - 1)))
    for _ in range(squarings):
        # out[b, i, j] = min_k dist[b, i, k] + dist[b, k, j]
        dist = np.min(dist[:, :, :, None] + dist[:, None, :, :], axis=2)
    return dist


def profile_costs_batch(
    profile_ids: np.ndarray,
    distance_matrix: np.ndarray,
    alpha: float,
    cost_model: Optional[CostModel] = None,
) -> np.ndarray:
    """Individual costs ``c_i(s)`` for a batch of encoded profiles.

    Parameters
    ----------
    profile_ids:
        1-D integer array of profile encodings.
    distance_matrix:
        Dense metric distance matrix of shape ``(n, n)``.
    alpha:
        Link-cost parameter.
    cost_model:
        Optional :class:`~repro.core.cost_model.CostModel` whose
        vectorized per-peer term is added to every cost (``None`` — the
        default — prices the paper's unilateral game).

    Returns
    -------
    Array of shape ``(len(profile_ids), n)`` where entry ``[b, i]`` is the
    individual cost of peer ``i`` in profile ``b`` (``inf`` when the peer
    cannot reach everyone).
    """
    cost_model = resolve_cost_model(cost_model, alpha)
    dmat = np.asarray(distance_matrix, dtype=float)
    n = dmat.shape[0]
    if dmat.shape != (n, n):
        raise ValueError(f"distance matrix must be square, got {dmat.shape}")
    ids = np.asarray(profile_ids, dtype=np.int64)
    batch = ids.shape[0]
    num_bits = n * (n - 1)

    positions = np.arange(num_bits, dtype=np.int64)
    bits = ((ids[:, None] >> positions[None, :]) & 1).astype(bool)

    layout = _bit_layout(n)
    owners = np.array([i for i, _ in layout])
    targets = np.array([j for _, j in layout])

    adjacency = np.full((batch, n, n), math.inf)
    idx = np.arange(n)
    adjacency[:, idx, idx] = 0.0
    edge_weights = dmat[owners, targets]
    # Scatter present edges: adjacency[b, owners[p], targets[p]] = w[p].
    flat = adjacency.reshape(batch, n * n)
    flat_pos = owners * n + targets
    weight_rows = np.where(bits, edge_weights[None, :], math.inf)
    # Multiple bits never map to the same (i, j), so direct assignment works.
    flat[:, flat_pos] = np.minimum(flat[:, flat_pos], weight_rows)
    adjacency = flat.reshape(batch, n, n)

    dist = _min_plus_closure(adjacency, n)
    with np.errstate(divide="ignore", invalid="ignore"):
        stretch = dist / dmat[None, :, :]
    off_diag = ~np.eye(n, dtype=bool)
    zero_direct = (dmat == 0) & off_diag
    if zero_direct.any():
        reach_zero = dist == 0
        fix = zero_direct[None, :, :]
        stretch = np.where(fix & reach_zero, 1.0, stretch)
        stretch = np.where(fix & ~reach_zero, math.inf, stretch)
    stretch[:, idx, idx] = 0.0

    degrees = np.zeros((batch, n))
    for i in range(n):
        owned = owners == i
        degrees[:, i] = bits[:, owned].sum(axis=1)
    costs = alpha * degrees + stretch.sum(axis=2)
    if cost_model is not None:
        term = cost_model.batch_per_peer_term(bits, owners, targets, n)
        if term is not None:
            costs = costs + term
    return costs


def _batch_social_extra(
    ids: np.ndarray, n: int, cost_model: CostModel
) -> Optional[np.ndarray]:
    """Per-profile sum of the model's per-peer term (``None`` if zero)."""
    num_bits = n * (n - 1)
    positions = np.arange(num_bits, dtype=np.int64)
    bits = ((ids[:, None] >> positions[None, :]) & 1).astype(bool)
    layout = _bit_layout(n)
    owners = np.array([i for i, _ in layout])
    targets = np.array([j for _, j in layout])
    term = cost_model.batch_per_peer_term(bits, owners, targets, n)
    return None if term is None else term.sum(axis=1)


@dataclass(frozen=True)
class ExhaustiveResult:
    """Outcome of an exhaustive equilibrium sweep.

    Attributes
    ----------
    n / alpha:
        Instance parameters.
    num_profiles:
        Total profiles checked (``2^(n(n-1))``).
    equilibrium_ids:
        Encoded ids of every pure Nash equilibrium found (possibly empty —
        that is the Theorem 5.1 situation).
    best_profile_id / best_social_cost:
        The social-cost optimum over *all* profiles, obtained for free
        during the sweep (an exact ``C(OPT)``).
    """

    n: int
    alpha: float
    num_profiles: int
    equilibrium_ids: Tuple[int, ...]
    best_profile_id: int
    best_social_cost: float
    #: Spec of the cost model the social costs were priced with (``None``
    #: = the paper's unilateral game).  The equilibrium set itself is
    #: model-independent by the externality contract.
    cost_model_spec: Optional[Tuple] = None

    @property
    def has_equilibrium(self) -> bool:
        """True when at least one pure Nash equilibrium exists."""
        return len(self.equilibrium_ids) > 0

    @property
    def num_equilibria(self) -> int:
        return len(self.equilibrium_ids)

    def equilibria(self) -> List[StrategyProfile]:
        """Decode all equilibrium profiles."""
        return [decode_profile(pid, self.n) for pid in self.equilibrium_ids]

    def optimum_profile(self) -> StrategyProfile:
        """Decode the social-cost optimal profile."""
        return decode_profile(self.best_profile_id, self.n)


def exhaustive_equilibria(
    distance_matrix: np.ndarray,
    alpha: float,
    chunk_size: int = 1 << 14,
    rtol: float = _RELATIVE_TOLERANCE,
    max_equilibria: Optional[int] = None,
    cost_model: Optional[CostModel] = None,
) -> ExhaustiveResult:
    """Find **all** pure Nash equilibria of a tiny game exhaustively.

    Evaluates every one of the ``2^(n(n-1))`` profiles in vectorized
    chunks.  Supports ``n <= MAX_EXHAUSTIVE_PEERS``.  An empty
    ``equilibrium_ids`` certifies that the instance admits **no** pure Nash
    equilibrium — the phenomenon of the paper's Theorem 5.1.

    ``cost_model`` prices the *social* costs (so ``best_social_cost`` is
    the model's exact OPT); the Nash check itself runs on the base game's
    costs, which is exact for every conforming model — the per-peer term
    is constant w.r.t. each peer's own strategy (the externality contract
    of :mod:`repro.core.cost_model`), so it drops out of every
    best-response comparison and the equilibrium set is identical by
    construction, not merely up to tolerance.

    Notes
    -----
    The equilibrium condition is evaluated with relative tolerance
    ``rtol``: peer ``i`` is playing a best response when
    ``c_i(s) <= best_i(context) * (1 + rtol)``.  This mirrors
    :data:`repro.core.best_response.RELATIVE_TOLERANCE` (ties favor the
    status quo).
    """
    cost_model = resolve_cost_model(cost_model, alpha)
    model_spec = None if cost_model is None else cost_model.spec()
    dmat = np.asarray(distance_matrix, dtype=float)
    n = dmat.shape[0]
    if n > MAX_EXHAUSTIVE_PEERS:
        raise ValueError(
            f"exhaustive sweep supports n <= {MAX_EXHAUSTIVE_PEERS}, got {n}"
        )
    if n <= 1:
        return ExhaustiveResult(
            n=n,
            alpha=alpha,
            num_profiles=1,
            equilibrium_ids=(0,),
            best_profile_id=0,
            best_social_cost=0.0,
            cost_model_spec=model_spec,
        )
    bits_per_peer = n - 1
    num_bits = n * bits_per_peer
    num_profiles = 1 << num_bits

    costs = np.empty((num_profiles, n))
    extra: Optional[np.ndarray] = None
    for start in range(0, num_profiles, chunk_size):
        stop = min(start + chunk_size, num_profiles)
        ids = np.arange(start, stop, dtype=np.int64)
        costs[start:stop] = profile_costs_batch(ids, dmat, alpha)
        if cost_model is not None:
            chunk_extra = _batch_social_extra(ids, n, cost_model)
            if chunk_extra is not None:
                if extra is None:
                    extra = np.zeros(num_profiles)
                extra[start:stop] = chunk_extra

    strategies_per_peer = 1 << bits_per_peer
    is_nash = np.ones(num_profiles, dtype=bool)
    for i in range(n):
        # Profile id = high * 2^((i+1)(n-1)) + own * 2^(i(n-1)) + low.
        low = 1 << (i * bits_per_peer)
        high = num_profiles // (low * strategies_per_peer)
        column = costs[:, i].reshape(high, strategies_per_peer, low)
        best = column.min(axis=1, keepdims=True)
        # inf-cost contexts (nobody can reach everyone even with all own
        # links) cannot happen for n >= 2, and inf <= inf would wrongly
        # pass; guard by requiring a finite cost.
        ok = (column <= best * (1.0 + rtol)) & np.isfinite(column)
        is_nash &= ok.reshape(num_profiles)

    social = costs.sum(axis=1)
    if extra is not None:
        social = social + extra
    best_profile_id = int(np.argmin(social))
    equilibrium_ids = np.nonzero(is_nash)[0]
    if max_equilibria is not None:
        equilibrium_ids = equilibrium_ids[:max_equilibria]
    return ExhaustiveResult(
        n=n,
        alpha=alpha,
        num_profiles=num_profiles,
        equilibrium_ids=tuple(int(x) for x in equilibrium_ids),
        best_profile_id=best_profile_id,
        best_social_cost=float(social[best_profile_id]),
        cost_model_spec=model_spec,
    )


# ----------------------------------------------------------------------
# Fast dynamics on encoded profiles
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EncodedDynamicsResult:
    """Outcome of :func:`encoded_best_response_dynamics`.

    ``outcome`` is ``"converged"``, ``"cycle"`` or ``"max_rounds"``;
    ``profile_id`` is the final encoded profile; ``cycle_profile_ids``
    lists the distinct profiles visited within one detected cycle period
    (empty unless ``outcome == "cycle"``).
    """

    outcome: str
    profile_id: int
    rounds: int
    moves: int
    cycle_profile_ids: Tuple[int, ...]

    @property
    def converged(self) -> bool:
        return self.outcome == "converged"

    def profiles_in_cycle(self, n: int) -> List[StrategyProfile]:
        """Decode the distinct profiles of the detected cycle."""
        return [decode_profile(pid, n) for pid in self.cycle_profile_ids]


def encoded_best_response_dynamics(
    distance_matrix: np.ndarray,
    alpha: float,
    start_id: int = 0,
    order: Optional[Sequence[int]] = None,
    max_rounds: int = 100,
    rtol: float = _RELATIVE_TOLERANCE,
) -> EncodedDynamicsResult:
    """Round-based exact best-response dynamics on encoded profiles.

    A numpy-vectorized twin of
    :class:`repro.core.dynamics.BestResponseDynamics` for ``n <=
    MAX_EXHAUSTIVE_PEERS``: each activated peer evaluates all ``2^(n-1)``
    own strategies in one batched cost computation and switches to the
    cheapest (status quo wins ties).  Used by the no-Nash witness search,
    where millions of tiny dynamics runs act as a cheap filter before the
    exhaustive sweep.

    Cycle detection records ``(profile, activated peer)`` states, which is
    sound for the fixed activation ``order`` used here.
    """
    dmat = np.asarray(distance_matrix, dtype=float)
    n = dmat.shape[0]
    if n > MAX_EXHAUSTIVE_PEERS:
        raise ValueError(
            f"encoded dynamics supports n <= {MAX_EXHAUSTIVE_PEERS}, got {n}"
        )
    bits_per_peer = n - 1
    num_strategies = 1 << bits_per_peer
    activation = list(order) if order is not None else list(range(n))
    strategy_range = np.arange(num_strategies, dtype=np.int64)

    profile_id = int(start_id)
    seen: dict = {}
    trail: List[Tuple[int, int]] = []
    moves = 0
    for round_index in range(max_rounds):
        moved = False
        for peer in activation:
            shift = peer * bits_per_peer
            cleared = profile_id & ~((num_strategies - 1) << shift)
            variant_ids = cleared + (strategy_range << shift)
            costs = profile_costs_batch(variant_ids, dmat, alpha)[:, peer]
            current_strategy = (profile_id >> shift) & (num_strategies - 1)
            current_cost = costs[current_strategy]
            best = int(np.argmin(costs))
            tolerance = (
                rtol * max(1.0, abs(current_cost))
                if math.isfinite(current_cost)
                else 0.0
            )
            if costs[best] < current_cost - tolerance:
                profile_id = int(variant_ids[best])
                moves += 1
                moved = True
                state = (profile_id, peer)
                if state in seen:
                    first = seen[state]
                    cycle_ids = tuple(
                        dict.fromkeys(
                            pid for pid, marker in trail if marker >= first
                        )
                    )
                    return EncodedDynamicsResult(
                        outcome="cycle",
                        profile_id=profile_id,
                        rounds=round_index,
                        moves=moves,
                        cycle_profile_ids=cycle_ids,
                    )
                seen[state] = moves
                trail.append((profile_id, moves))
        if not moved:
            return EncodedDynamicsResult(
                outcome="converged",
                profile_id=profile_id,
                rounds=round_index,
                moves=moves,
                cycle_profile_ids=(),
            )
    return EncodedDynamicsResult(
        outcome="max_rounds",
        profile_id=profile_id,
        rounds=max_rounds,
        moves=moves,
        cycle_profile_ids=(),
    )
