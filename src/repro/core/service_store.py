"""Pluggable storage arenas for per-peer service-cost matrices.

The :class:`~repro.core.evaluator.GameEvaluator` keeps up to
``max_cached_services`` warm ``W`` matrices — each an ``(n-1) x n``
float64 block — which makes two things hard at scale:

* **process-pool solvers** need workers to read ``W`` without pickling
  megabytes per task, and
* **very large populations** need the resident footprint of the cache
  bounded below ``O(n^3)`` bytes.

A :class:`ServiceStore` owns the backing buffers of those matrices and
decouples *where the bytes live* from the evaluator's cache bookkeeping:

* :class:`ArrayStore` — plain process-private ndarrays (the default;
  byte-for-byte the pre-store behavior).
* :class:`SharedMemoryStore` — one :mod:`multiprocessing.shared_memory`
  segment per matrix.  :meth:`~ServiceStore.handle` descriptors let pool
  workers attach the segment by name and solve against the *same pages*
  the parent repaired in place — zero-copy, no ``W`` pickling.
* :class:`SpillStore` — a memory-mapped spill file plus a bounded set of
  resident in-RAM copies (LRU promotion on access, demotion past the
  byte ``budget``).  Handles point workers at ``(path, offset)`` windows
  of the same file, so the spill store is also process-shareable after a
  :meth:`~ServiceStore.flush`.

Stores only move bytes; they never change them.  Every implementation
round-trips matrices bit-exactly, so evaluator results (and dynamics
trajectories) are identical whichever store backs the cache — the
property the store test-suite pins.

For sharded evaluators, :class:`~repro.core.sharded.ShardedStore` wraps
one store of any of these kinds *per row-block shard* — giving each
shard its own byte budget — and routes every key (and worker handle) to
the owning shard's store.

The evaluator binds its :class:`~repro.core.evaluator.EvaluatorStats` to
the store (:meth:`~ServiceStore.bind_stats`) so promotions, demotions and
the resident byte ceiling are observable through the usual counters.
"""

from __future__ import annotations

import itertools
import os
import tempfile
import uuid
import weakref
from types import SimpleNamespace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ServiceStore",
    "ArrayStore",
    "SharedMemoryStore",
    "SpillStore",
    "attach_service_weights",
    "make_store",
]

#: ``store=`` spec strings accepted by :func:`make_store` (and therefore
#: by the evaluator constructor).
STORE_SPECS = ("memory", "shared", "spill")

#: Monotone id stamped into every shareable store's handles (and bumped
#: when a closed store is re-armed), so a worker's attachment cache can
#: never serve a mapping from a *previous* store whose segment or spill
#: file happened to reuse the same name — the cache key is
#: ``(handle kind, location, shape, generation)``, and two different
#: backings never share a generation.
_GENERATIONS = itertools.count(1)


def _new_stats() -> SimpleNamespace:
    """Standalone counter namespace (field names match EvaluatorStats)."""
    return SimpleNamespace(
        store_promotions=0,
        store_demotions=0,
        store_resident_bytes=0,
        store_resident_peak_bytes=0,
    )


class ServiceStore:
    """Base class: a keyed arena of read-only float matrices.

    The evaluator is the only writer; all mutation goes through
    :meth:`put` (whole matrix) and :meth:`write_rows` (repair), and both
    return the *current backing array* — callers must re-fetch via
    :meth:`get` after any store operation because implementations are
    free to move a matrix between buffers (RAM copy vs. memmap window).
    Returned arrays are always marked read-only.
    """

    #: Whether :meth:`handle` can describe entries to another process.
    shareable = False
    #: Whether :meth:`get` always returns the same buffer for a key.
    #: Stores that move matrices between RAM and disk set this False so
    #: callers re-fetch instead of pinning demoted copies alive.
    stable_backing = True
    #: Soft cap (bytes) a bulk builder should stay under per chunk of
    #: freshly materialized matrices; None means unbounded.
    chunk_budget_bytes: Optional[int] = None
    name = "base"

    def __init__(self) -> None:
        self.stats = _new_stats()

    # -- lifecycle ------------------------------------------------------
    def bind_stats(self, stats) -> None:
        """Route the store's counters into ``stats`` (EvaluatorStats)."""
        for field in vars(_new_stats()):
            setattr(stats, field, getattr(stats, field, 0))
        self.stats = stats

    def close(self) -> None:
        """Release every buffer (segments, spill file)."""

    # -- data plane -----------------------------------------------------
    def put(self, key: int, weights: np.ndarray) -> np.ndarray:
        """Ingest a full matrix for ``key``; returns the backing array."""
        raise NotImplementedError

    def get(self, key: int) -> Optional[np.ndarray]:
        """Current backing array of ``key`` (None when absent)."""
        raise NotImplementedError

    def write_rows(
        self, key: int, rows: Sequence[int], values: np.ndarray
    ) -> np.ndarray:
        """Overwrite ``rows`` of ``key`` in place; returns the backing."""
        raise NotImplementedError

    def discard(self, key: int) -> None:
        """Drop ``key`` (no-op when absent)."""
        raise NotImplementedError

    def clear(self) -> None:
        """Drop every entry, keeping reusable buffers where possible."""
        raise NotImplementedError

    def keys(self) -> List[int]:
        raise NotImplementedError

    # -- process sharing ------------------------------------------------
    def handle(self, key: int) -> Optional[Tuple]:
        """Picklable zero-copy descriptor of ``key`` for pool workers.

        ``None`` means this store cannot share the entry across process
        boundaries (the evaluator then migrates to a shareable store).
        """
        return None

    def flush(self, keys: Optional[Sequence[int]] = None) -> None:
        """Make pending writes visible to :meth:`handle` attachments."""

    # -- accounting -----------------------------------------------------
    def resident_bytes(self) -> int:
        """Bytes currently held in process-private RAM copies."""
        return 0

    def _account_resident(self, delta: int) -> None:
        stats = self.stats
        stats.store_resident_bytes += delta
        if stats.store_resident_bytes > stats.store_resident_peak_bytes:
            stats.store_resident_peak_bytes = stats.store_resident_bytes


def _read_only(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


def _write_rows_inplace(
    array: np.ndarray, rows: Sequence[int], values: np.ndarray
) -> None:
    array.setflags(write=True)
    try:
        array[list(rows)] = values
    finally:
        array.setflags(write=False)


class ArrayStore(ServiceStore):
    """Plain in-process ndarrays — the default, zero-overhead store."""

    shareable = False
    name = "memory"

    def __init__(self) -> None:
        super().__init__()
        self._data: Dict[int, np.ndarray] = {}

    def put(self, key: int, weights: np.ndarray) -> np.ndarray:
        # Takes ownership of ``weights`` (the evaluator hands over freshly
        # built arrays), so the default store adds zero copies.
        array = np.ascontiguousarray(weights, dtype=np.float64)
        old = self._data.get(key)
        self._data[key] = _read_only(array)
        self._account_resident(
            array.nbytes - (old.nbytes if old is not None else 0)
        )
        return array

    def get(self, key: int) -> Optional[np.ndarray]:
        return self._data.get(key)

    def write_rows(
        self, key: int, rows: Sequence[int], values: np.ndarray
    ) -> np.ndarray:
        array = self._data[key]
        _write_rows_inplace(array, rows, values)
        return array

    def discard(self, key: int) -> None:
        array = self._data.pop(key, None)
        if array is not None:
            self._account_resident(-array.nbytes)

    def clear(self) -> None:
        for key in list(self._data):
            self.discard(key)

    def close(self) -> None:
        self.clear()

    def keys(self) -> List[int]:
        return list(self._data)

    def resident_bytes(self) -> int:
        return sum(a.nbytes for a in self._data.values())


# ----------------------------------------------------------------------
# Shared-memory store
# ----------------------------------------------------------------------
def _segment_name() -> str:
    return f"repro_{os.getpid()}_{uuid.uuid4().hex[:12]}"


class SharedMemoryStore(ServiceStore):
    """One ``multiprocessing.shared_memory`` segment per matrix.

    Pool workers attach segments by name (:func:`attach_service_weights`)
    and read the exact pages the parent writes — repairs between sweeps
    are visible to long-lived workers without any re-send.  Segments of
    evicted entries are kept on a same-size freelist (every matrix of one
    evaluator has identical shape) so steady-state eviction costs no
    ``shm_open`` churn.
    """

    shareable = True
    name = "shared"

    def __init__(self) -> None:
        super().__init__()
        from multiprocessing import shared_memory  # lazy: import cost

        self._shm_mod = shared_memory
        self._generation = next(_GENERATIONS)
        #: key -> (segment, array view, shape)
        self._data: Dict[int, Tuple] = {}
        self._free: Dict[int, List] = {}  # nbytes -> [segments]
        self._finalizer = weakref.finalize(
            self, SharedMemoryStore._release, self._data, self._free
        )

    def _ensure_open(self) -> None:
        """Re-arm the cleanup finalizer after a close-then-reuse.

        ``weakref.finalize`` fires at most once: without this, a store
        that is written to again after :meth:`close` would allocate
        fresh segments with a *dead* finalizer — exactly the silent
        ``/dev/shm`` leak the safety net exists to prevent.  Re-opening
        also advances the store's generation, so any stale worker
        attachments keyed to the closed incarnation cannot be served.
        """
        if not self._finalizer.alive:
            self._generation = next(_GENERATIONS)
            self._finalizer = weakref.finalize(
                self, SharedMemoryStore._release, self._data, self._free
            )

    @staticmethod
    def _release(data: Dict, free: Dict) -> None:
        for segment, _array, _shape in data.values():
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        data.clear()
        for segments in free.values():
            for segment in segments:
                try:
                    segment.close()
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
        free.clear()

    def close(self) -> None:
        self._account_resident(-self.resident_bytes())
        self._finalizer()

    def _segment_for(self, nbytes: int):
        pool = self._free.get(nbytes)
        if pool:
            return pool.pop()
        return self._shm_mod.SharedMemory(
            name=_segment_name(), create=True, size=nbytes
        )

    def put(self, key: int, weights: np.ndarray) -> np.ndarray:
        self._ensure_open()
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        old = self._data.get(key)
        if old is not None and old[0].size >= weights.nbytes > 0:
            segment = old[0]
        else:
            if old is not None:
                self._retire(old[0])
                self._account_resident(-old[1].nbytes)
            segment = self._segment_for(max(1, weights.nbytes))
        array = np.ndarray(
            weights.shape, dtype=np.float64, buffer=segment.buf
        )
        array.setflags(write=True)
        array[...] = weights
        self._data[key] = (segment, _read_only(array), weights.shape)
        if old is not None and old[0] is segment:
            self._account_resident(array.nbytes - old[1].nbytes)
        else:
            self._account_resident(array.nbytes)
        return array

    def get(self, key: int) -> Optional[np.ndarray]:
        entry = self._data.get(key)
        return None if entry is None else entry[1]

    def write_rows(
        self, key: int, rows: Sequence[int], values: np.ndarray
    ) -> np.ndarray:
        array = self._data[key][1]
        _write_rows_inplace(array, rows, values)
        return array

    def discard(self, key: int) -> None:
        entry = self._data.pop(key, None)
        if entry is not None:
            self._retire(entry[0])
            self._account_resident(-entry[1].nbytes)

    def _retire(self, segment) -> None:
        self._free.setdefault(segment.size, []).append(segment)

    def clear(self) -> None:
        for key in list(self._data):
            self.discard(key)

    def keys(self) -> List[int]:
        return list(self._data)

    def resident_bytes(self) -> int:
        # Shared pages are counted as resident: they live in this host's
        # memory even though children map them too.
        return sum(entry[1].nbytes for entry in self._data.values())

    def handle(self, key: int) -> Optional[Tuple]:
        entry = self._data.get(key)
        if entry is None:
            return None
        segment, _array, shape = entry
        return ("shm", segment.name, tuple(shape), self._generation)


# ----------------------------------------------------------------------
# Memory-mapped spill store
# ----------------------------------------------------------------------
class _SpillSlot:
    __slots__ = ("offset", "shape", "nbytes", "resident", "dirty")

    def __init__(self, offset: int, shape: Tuple[int, ...], nbytes: int):
        self.offset = offset
        self.shape = shape
        self.nbytes = nbytes
        self.resident: Optional[np.ndarray] = None
        self.dirty = False


class SpillStore(ServiceStore):
    """Spill-file arena with a bounded set of resident RAM copies.

    Every matrix owns an (append-allocated, freelist-reused) slab of one
    spill file.  Hot entries additionally keep an in-RAM copy; the sum of
    those copies never exceeds ``budget_bytes`` *plus at most one matrix*
    (the entry being accessed is always promoted first, then older
    entries are demoted LRU-first — so a budget below a single matrix
    degenerates to exactly one resident entry).  Demotion writes dirty
    copies back to the slab; promotion reads the slab back bit-exactly.

    Handles describe ``(path, offset, shape)`` windows, so pool workers
    can map the same file read-only; :meth:`flush` writes pending dirty
    copies out first.
    """

    shareable = True
    stable_backing = False
    name = "spill"

    def __init__(
        self,
        budget_bytes: int = 64 * 1024 * 1024,
        directory: Optional[str] = None,
    ) -> None:
        super().__init__()
        if budget_bytes < 0:
            raise ValueError(f"budget_bytes must be >= 0, got {budget_bytes}")
        self.budget_bytes = int(budget_bytes)
        self.chunk_budget_bytes = self.budget_bytes
        self._directory = directory
        self._generation = next(_GENERATIONS)
        fd, path = tempfile.mkstemp(
            prefix="repro-spill-", suffix=".bin", dir=directory
        )
        self._fd = fd
        self._path = path
        self._end = 0
        self._slots: Dict[int, _SpillSlot] = {}
        #: Resident keys in least-recently-used-first order (dicts keep
        #: insertion order, so re-inserting on touch is an O(1) LRU).
        self._lru: Dict[int, None] = {}
        self._resident_total = 0
        self._free: Dict[int, List[int]] = {}  # nbytes -> [offsets]
        self._finalizer = weakref.finalize(self, SpillStore._release, fd, path)

    @staticmethod
    def _release(fd: int, path: str) -> None:
        try:
            os.close(fd)
        except OSError:  # pragma: no cover - already closed
            pass
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - already gone
            pass

    def _ensure_open(self) -> None:
        """Open a fresh slab file after a close-then-reuse.

        A ``weakref.finalize`` fires at most once, and :meth:`close`
        also closed the slab fd — so a store written to again after
        ``close`` must start a new spill file (with a live finalizer and
        a new generation) rather than silently re-truncating a dead fd
        or leaking the new file on exit.
        """
        if self._finalizer.alive:
            return
        fd, path = tempfile.mkstemp(
            prefix="repro-spill-", suffix=".bin", dir=self._directory
        )
        self._fd = fd
        self._path = path
        self._end = 0
        self._free = {}  # old offsets belonged to the unlinked file
        self._generation = next(_GENERATIONS)
        self._finalizer = weakref.finalize(self, SpillStore._release, fd, path)

    def close(self) -> None:
        self._account_resident(-self.resident_bytes())
        self._resident_total = 0
        self._slots.clear()
        self._lru.clear()
        self._free = {}
        self._finalizer()

    @property
    def path(self) -> str:
        return self._path

    # -- slab I/O -------------------------------------------------------
    def _alloc(self, nbytes: int) -> int:
        pool = self._free.get(nbytes)
        if pool:
            return pool.pop()
        offset = self._end
        self._end += nbytes
        os.truncate(self._fd, self._end)
        return offset

    def _write_slab(self, slot: _SpillSlot, array: np.ndarray) -> None:
        os.pwrite(self._fd, array.tobytes(), slot.offset)
        slot.dirty = False

    def _read_slab(self, slot: _SpillSlot) -> np.ndarray:
        raw = os.pread(self._fd, slot.nbytes, slot.offset)
        return np.frombuffer(bytearray(raw), dtype=np.float64).reshape(
            slot.shape
        )

    # -- residency ------------------------------------------------------
    def _touch(self, key: int) -> None:
        self._lru.pop(key, None)
        self._lru[key] = None

    def _admit(self, key: int, array: np.ndarray) -> None:
        slot = self._slots[key]
        slot.resident = _read_only(array)
        self._resident_total += array.nbytes
        self._account_resident(array.nbytes)
        self._touch(key)
        self._enforce_budget(keep=key)

    def _demote(self, key: int) -> None:
        slot = self._slots[key]
        if slot.resident is None:
            return
        if slot.dirty:
            self._write_slab(slot, slot.resident)
        self._resident_total -= slot.resident.nbytes
        self._account_resident(-slot.resident.nbytes)
        slot.resident = None
        self._lru.pop(key, None)
        self.stats.store_demotions += 1

    def _enforce_budget(self, keep: int) -> None:
        while self._resident_total > self.budget_bytes:
            victim = next((k for k in self._lru if k != keep), None)
            if victim is None:
                break
            self._demote(victim)

    def _promote(self, key: int) -> np.ndarray:
        slot = self._slots[key]
        if slot.resident is None:
            self._admit(key, self._read_slab(slot))
            self.stats.store_promotions += 1
        else:
            self._touch(key)
        return slot.resident

    # -- ServiceStore API ----------------------------------------------
    def put(self, key: int, weights: np.ndarray) -> np.ndarray:
        self._ensure_open()
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        old = self._slots.get(key)
        if old is not None and old.nbytes == weights.nbytes:
            slot = old
            slot.shape = weights.shape
            if slot.resident is not None:
                self._resident_total -= slot.resident.nbytes
                self._account_resident(-slot.resident.nbytes)
                slot.resident = None
                self._lru.pop(key, None)
        else:
            if old is not None:
                self.discard(key)
            slot = _SpillSlot(
                self._alloc(weights.nbytes), weights.shape, weights.nbytes
            )
            self._slots[key] = slot
        array = weights.copy()
        slot.dirty = True
        self._admit(key, array)
        return slot.resident

    def get(self, key: int) -> Optional[np.ndarray]:
        if key not in self._slots:
            return None
        return self._promote(key)

    def write_rows(
        self, key: int, rows: Sequence[int], values: np.ndarray
    ) -> np.ndarray:
        array = self._promote(key)
        _write_rows_inplace(array, rows, values)
        self._slots[key].dirty = True
        return array

    def discard(self, key: int) -> None:
        slot = self._slots.pop(key, None)
        if slot is None:
            return
        if slot.resident is not None:
            self._resident_total -= slot.resident.nbytes
            self._account_resident(-slot.resident.nbytes)
            self._lru.pop(key, None)
        self._free.setdefault(slot.nbytes, []).append(slot.offset)

    def clear(self) -> None:
        for key in list(self._slots):
            self.discard(key)

    def keys(self) -> List[int]:
        return list(self._slots)

    def resident_bytes(self) -> int:
        return self._resident_total

    def flush(self, keys: Optional[Sequence[int]] = None) -> None:
        targets = self._slots.keys() if keys is None else keys
        for key in targets:
            slot = self._slots.get(key)
            if slot is not None and slot.resident is not None and slot.dirty:
                self._write_slab(slot, slot.resident)

    def handle(self, key: int) -> Optional[Tuple]:
        slot = self._slots.get(key)
        if slot is None:
            return None
        return (
            "mmap",
            self._path,
            slot.offset,
            tuple(slot.shape),
            self._generation,
        )


# ----------------------------------------------------------------------
# Worker-side attachment
# ----------------------------------------------------------------------
#: Per-process cache of attached buffers; keyed by the immutable part of
#: the handle so long-lived pool workers attach each segment/window once.
#: ``_ATTACHED_SEGMENTS`` pins the SharedMemory objects so their mappings
#: outlive the tasks (ndarrays cannot hold arbitrary attributes).
_ATTACHMENTS: Dict[Tuple, np.ndarray] = {}
_ATTACHED_SEGMENTS: Dict[Tuple, object] = {}
_ATTACHMENT_CAP = 1024


def attach_service_weights(handle: Tuple) -> np.ndarray:
    """Materialize a read-only weights view from a store handle.

    Runs inside pool workers.  ``("shm", name, shape, generation)``
    attaches the named shared-memory segment;
    ``("mmap", path, offset, shape, generation)`` maps a window of the
    spill file.  Attachments are cached per process, so repeated tasks
    against the same matrix touch no syscalls — and because both
    mappings are shared, in-place repairs by the owner are visible here
    without re-attaching.

    The cache key is the *whole* handle including the owning store's
    generation: a segment or spill-file name can be reused by a later
    store after the original was closed, and a name-only key would then
    serve the dead incarnation's mapping — bytes from a buffer the owner
    has already retired.  A new generation forces a fresh attach.

    Resource-tracker note: pool workers inherit the owner's tracker
    (multiprocessing ships the tracker fd to fork *and* spawn children),
    so the attach-side ``register`` is an idempotent no-op and the
    owner's eventual ``unlink`` balances the books — no unregister hack
    is needed here, and adding one would double-unregister.
    """
    kind = handle[0]
    if kind == "shm":
        _kind, segment_name, shape, _generation = handle
        key = tuple(handle)
        cached = _ATTACHMENTS.get(key)
        if cached is not None:
            return cached
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(name=segment_name)
        array = np.ndarray(shape, dtype=np.float64, buffer=segment.buf)
        array.setflags(write=False)
        _cache_attachment(key, array)
        _ATTACHED_SEGMENTS[key] = segment  # keep the mapping alive
        return array
    if kind == "mmap":
        _kind, path, offset, shape, _generation = handle
        key = tuple(handle)
        cached = _ATTACHMENTS.get(key)
        if cached is not None:
            return cached
        array = np.memmap(
            path, dtype=np.float64, mode="r", offset=offset, shape=shape
        )
        _cache_attachment(key, array)
        return array
    raise ValueError(f"unknown service-store handle kind {kind!r}")


def _cache_attachment(key: Tuple, array: np.ndarray) -> None:
    # FIFO per-entry eviction: dict order makes the oldest attachment —
    # most likely a segment its owner has already retired — the first
    # to go, so a long-lived worker cannot pin unbounded unlinked
    # segments, and hot recent entries survive the cap.
    while len(_ATTACHMENTS) >= _ATTACHMENT_CAP:
        oldest = next(iter(_ATTACHMENTS))
        del _ATTACHMENTS[oldest]
        segment = _ATTACHED_SEGMENTS.pop(oldest, None)
        if segment is not None:
            try:
                segment.close()
            except Exception:  # pragma: no cover - best-effort cleanup
                pass
    _ATTACHMENTS[key] = array


# ----------------------------------------------------------------------
def make_store(spec) -> ServiceStore:
    """Build a store from a spec string or pass an instance through.

    ``"memory"`` | ``"shared"`` | ``"spill"`` (default budget), or any
    :class:`ServiceStore` instance for custom configuration (e.g.
    ``SpillStore(budget_bytes=8 << 20)``).
    """
    if isinstance(spec, ServiceStore):
        return spec
    if spec == "memory":
        return ArrayStore()
    if spec == "shared":
        return SharedMemoryStore()
    if spec == "spill":
        return SpillStore()
    raise ValueError(
        f"unknown service store {spec!r}; expected one of {STORE_SPECS} "
        f"or a ServiceStore instance"
    )
