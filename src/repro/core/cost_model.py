"""Pluggable per-peer cost models for the topology game.

The paper's game prices peer ``i`` at ``alpha * |s_i| + sum_j stretch(i, j)``
(:class:`UnilateralModel`).  A :class:`CostModel` generalizes this with one
additive hook::

    c_i(s) = alpha * |s_i| + sum_j stretch(i, j) + per_peer_term(s)[i]

**The externality contract.**  ``per_peer_term(profile)[i]`` MUST be
independent of peer ``i``'s *own* strategy ``s_i`` (it may depend on every
other peer's strategy).  Under that contract the term is a constant in every
argmin a solver runs for peer ``i``, so best responses, improving
deviations, Nash sets, memo re-scores, and tie-breaking cost keys are all
unchanged — the entire incremental solve fabric (evaluator memos, shard
worker pools, batched gain sweeps) keeps pricing with the scalar ``alpha``
and stays *exact* for every conforming model.  Only the accounting surfaces
(``social_cost`` / ``peer_costs`` / ``peer_cost``) consult the model.

:class:`CongestionModel` is the canonical example: its ``beta * indeg(i)``
term charges peer ``i`` for links *other* peers point at it, which ``s_i``
cannot affect (own out-links change other peers' in-degrees, never one's
own).  Social cost and the Price of Anarchy shift; equilibria do not — the
theorem previously asserted only in :mod:`repro.extensions.congestion`.

``UnilateralModel`` is bitwise-neutral by construction: its hook returns
``None`` (not a zero array) and its social term is exactly ``0.0``, so
every consuming site short-circuits and the float pipeline executes the
same operations as with no model at all.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Tuple

import numpy as np

from repro.core.profile import StrategyProfile

__all__ = [
    "CostModel",
    "UnilateralModel",
    "CongestionModel",
    "model_from_spec",
    "resolve_cost_model",
]


class CostModel:
    """Base class: the paper's cost plus one additive per-peer hook.

    Subclasses implement :meth:`per_peer_term` / :meth:`social_extra`
    honoring the externality contract in the module docstring, and
    :meth:`spec` as a picklable pure-literal tuple — the wire/journal
    representation that :func:`model_from_spec` round-trips and that
    :meth:`digest` folds into evaluator memo keys.
    """

    kind: str = "abstract"

    def __init__(self, alpha: float) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self._alpha = float(alpha)

    @property
    def alpha(self) -> float:
        """The link-cost / stretch-cost trade-off parameter."""
        return self._alpha

    # -- the hook ------------------------------------------------------
    def per_peer_term(self, profile: StrategyProfile) -> Optional[np.ndarray]:
        """Additive cost term per peer, or ``None`` when identically zero.

        Must be independent of each peer's own strategy (see the module
        docstring).  Returning ``None`` — not a zero array — is the
        bitwise-neutrality fast path: callers skip the addition entirely.
        """
        raise NotImplementedError

    def social_extra(self, profile: StrategyProfile) -> float:
        """Sum of :meth:`per_peer_term` over all peers (``0.0`` if none).

        Subclasses may compute this in closed form (e.g. the congestion
        total is exactly ``beta * |E|`` — every link is somebody's
        in-edge — with no per-peer accumulation needed).
        """
        raise NotImplementedError

    def batch_per_peer_term(
        self,
        bits: np.ndarray,
        owners: np.ndarray,
        targets: np.ndarray,
        n: int,
    ) -> Optional[np.ndarray]:
        """Vectorized :meth:`per_peer_term` over encoded profiles.

        ``bits`` is the ``(batch, n*(n-1))`` bool link matrix of
        :mod:`repro.core.exhaustive`'s profile encoding and ``owners`` /
        ``targets`` its bit layout.  Returns a ``(batch, n)`` term array
        or ``None`` when the term is identically zero.  The default
        decodes profile by profile — exact for any model; families with
        a tensor form (congestion) override it.
        """
        batch = bits.shape[0]
        out = np.zeros((batch, n))
        nonzero = False
        for row in range(batch):
            strategies: list = [set() for _ in range(n)]
            for pos in np.nonzero(bits[row])[0]:
                strategies[int(owners[pos])].add(int(targets[pos]))
            term = self.per_peer_term(StrategyProfile(strategies))
            if term is not None:
                out[row] = term
                nonzero = True
        return out if nonzero else None

    # -- identity / wire representation --------------------------------
    def spec(self) -> Tuple:
        """Picklable pure-literal tuple identifying this model exactly."""
        raise NotImplementedError

    def digest(self) -> int:
        """Stable 32-bit digest of :meth:`spec` (for memo/profile keys).

        Derived from SHA-256 of the spec repr, not :func:`hash`, so it is
        identical across processes and interpreter runs — shard workers
        and the coordinator must agree on it byte for byte.
        """
        blob = repr(self.spec()).encode("utf-8")
        return int.from_bytes(hashlib.sha256(blob).digest()[:4], "big")

    def with_alpha(self, alpha: float) -> "CostModel":
        """Same model family and parameters, different ``alpha``."""
        raise NotImplementedError

    # -- value semantics ------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CostModel):
            return NotImplemented
        return self.spec() == other.spec()

    def __hash__(self) -> int:
        return hash(self.spec())

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in zip(
            self._spec_fields(), self.spec()[1:]
        ))
        return f"{type(self).__name__}({params})"

    def _spec_fields(self) -> Tuple[str, ...]:
        return ("alpha",)


class UnilateralModel(CostModel):
    """The paper's game, byte-for-byte the default.

    ``per_peer_term`` returns ``None`` and ``social_extra`` returns
    ``0.0``, so an evaluator carrying an explicit ``UnilateralModel``
    runs the identical float operations as one with ``cost_model=None``
    — pinned by the neutrality property tests.
    """

    kind = "unilateral"

    def per_peer_term(self, profile: StrategyProfile) -> None:
        return None

    def social_extra(self, profile: StrategyProfile) -> float:
        return 0.0

    def batch_per_peer_term(self, bits, owners, targets, n) -> None:
        return None

    def spec(self) -> Tuple:
        return ("unilateral", self._alpha)

    def with_alpha(self, alpha: float) -> "UnilateralModel":
        return UnilateralModel(alpha)


class CongestionModel(CostModel):
    """Congestion externality: peer ``i`` additionally pays ``beta * indeg(i)``.

    The in-degree counts links *other* peers bought toward ``i`` — a term
    ``s_i`` cannot influence, so the externality contract holds exactly:
    best responses and Nash sets equal the unilateral ones for any
    ``beta`` while social cost shifts by exactly ``beta * |E|``.
    """

    kind = "congestion"

    def __init__(self, alpha: float, beta: float) -> None:
        super().__init__(alpha)
        if beta < 0:
            raise ValueError(f"beta must be >= 0, got {beta}")
        self._beta = float(beta)

    @property
    def beta(self) -> float:
        """Per-in-edge congestion charge."""
        return self._beta

    def in_degrees(self, profile: StrategyProfile) -> np.ndarray:
        """In-degree of every peer under ``profile`` (int64 vector)."""
        counts = np.zeros(profile.n, dtype=np.int64)
        for _source, target in profile.edges():
            counts[target] += 1
        return counts

    def per_peer_term(self, profile: StrategyProfile) -> Optional[np.ndarray]:
        if self._beta == 0.0:
            return None
        return self._beta * self.in_degrees(profile)

    def social_extra(self, profile: StrategyProfile) -> float:
        # Every directed link is exactly one peer's in-edge, so the
        # aggregate is beta * |E| — no in-degree pass needed.
        return self._beta * profile.num_links

    def batch_per_peer_term(
        self, bits, owners, targets, n
    ) -> Optional[np.ndarray]:
        if self._beta == 0.0:
            return None
        indeg = np.zeros((bits.shape[0], n))
        for j in range(n):
            indeg[:, j] = bits[:, targets == j].sum(axis=1)
        return self._beta * indeg

    def spec(self) -> Tuple:
        return ("congestion", self._alpha, self._beta)

    def with_alpha(self, alpha: float) -> "CongestionModel":
        return CongestionModel(alpha, self._beta)

    def _spec_fields(self) -> Tuple[str, ...]:
        return ("alpha", "beta")


_MODEL_KINDS = {
    "unilateral": lambda spec: UnilateralModel(spec[1]),
    "congestion": lambda spec: CongestionModel(spec[1], spec[2]),
}


def model_from_spec(spec) -> CostModel:
    """Rebuild a model from its :meth:`CostModel.spec` tuple.

    The inverse used by shard workers (spec rides the ``reset`` message)
    and ``replay_journal`` (spec recorded per journal document).  Accepts
    lists too — JSON round-trips tuples as lists.
    """
    try:
        kind = spec[0]
        factory = _MODEL_KINDS[kind]
    except (KeyError, IndexError, TypeError):
        known = ", ".join(sorted(_MODEL_KINDS))
        raise ValueError(
            f"unknown cost-model spec {spec!r}; known kinds: {known}"
        ) from None
    model = factory(tuple(spec))
    if model.spec() != tuple(spec):
        raise ValueError(f"malformed cost-model spec {spec!r}")
    return model


def resolve_cost_model(
    cost_model: Optional[CostModel], alpha: float
) -> Optional[CostModel]:
    """Validate a model against a game's ``alpha`` (``None`` passes through).

    ``None`` stays ``None`` — the no-model fast path — rather than being
    promoted to a ``UnilateralModel``, so default-constructed games carry
    no model object at all and the neutrality property is structural.
    """
    if cost_model is None:
        return None
    if not isinstance(cost_model, CostModel):
        raise TypeError(
            f"cost_model must be a CostModel, got {type(cost_model).__name__}"
        )
    if cost_model.alpha != float(alpha):
        raise ValueError(
            f"cost_model alpha {cost_model.alpha} does not match "
            f"game alpha {float(alpha)}"
        )
    return cost_model
