"""Strategy profiles: who links to whom.

A peer's strategy is the set of peers it maintains directed links to
(``s_i ⊆ V \\ {i}``); a profile combines all peers' strategies and induces
the overlay topology ``G[s]``.  Profiles are immutable value objects so they
can be hashed for best-response cycle detection and used as dictionary keys.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Sequence, Tuple

__all__ = ["StrategyProfile"]

Strategy = FrozenSet[int]


class StrategyProfile:
    """An immutable combination of all peers' link strategies.

    Parameters
    ----------
    strategies:
        One iterable of out-neighbor indices per peer.  Self-loops and
        out-of-range targets are rejected.
    """

    __slots__ = ("_strategies", "_hash")

    def __init__(self, strategies: Sequence[Iterable[int]]) -> None:
        frozen = tuple(frozenset(s) for s in strategies)
        n = len(frozen)
        for i, strategy in enumerate(frozen):
            for j in strategy:
                if not isinstance(j, int) or isinstance(j, bool):
                    raise TypeError(
                        f"peer {i}: link target {j!r} is not an int"
                    )
                if not 0 <= j < n:
                    raise ValueError(
                        f"peer {i}: link target {j} out of range [0, {n})"
                    )
                if j == i:
                    raise ValueError(f"peer {i}: self-link is not allowed")
        self._strategies: Tuple[Strategy, ...] = frozen
        self._hash = hash(frozen)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of peers."""
        return len(self._strategies)

    def strategy(self, i: int) -> Strategy:
        """The out-neighbor set of peer ``i``."""
        return self._strategies[i]

    def strategies(self) -> Tuple[Strategy, ...]:
        """All strategies as a tuple of frozensets."""
        return self._strategies

    def out_degree(self, i: int) -> int:
        """Number of links maintained by peer ``i``."""
        return len(self._strategies[i])

    @property
    def num_links(self) -> int:
        """Total number of directed links ``|E|`` in the profile."""
        return sum(len(s) for s in self._strategies)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all directed links as ``(owner, target)`` pairs."""
        for i, strategy in enumerate(self._strategies):
            for j in strategy:
                yield (i, j)

    def has_link(self, i: int, j: int) -> bool:
        """True if peer ``i`` maintains a link to peer ``j``."""
        return j in self._strategies[i]

    # ------------------------------------------------------------------
    # Functional updates (profiles are immutable)
    # ------------------------------------------------------------------
    def with_strategy(self, i: int, strategy: Iterable[int]) -> "StrategyProfile":
        """New profile where peer ``i`` plays ``strategy`` instead."""
        updated = list(self._strategies)
        updated[i] = frozenset(strategy)
        return StrategyProfile(updated)

    def with_link(self, i: int, j: int) -> "StrategyProfile":
        """New profile with the link ``i -> j`` added."""
        return self.with_strategy(i, self._strategies[i] | {j})

    def without_link(self, i: int, j: int) -> "StrategyProfile":
        """New profile with the link ``i -> j`` removed (if present)."""
        return self.with_strategy(i, self._strategies[i] - {j})

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StrategyProfile):
            return NotImplemented
        return self._strategies == other._strategies

    def __hash__(self) -> int:
        return self._hash

    def key(self) -> Tuple[Tuple[int, ...], ...]:
        """Canonical sorted representation, stable across runs.

        Used for cycle detection in best-response dynamics and for JSON
        serialization.
        """
        return tuple(tuple(sorted(s)) for s in self._strategies)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StrategyProfile({[sorted(s) for s in self._strategies]})"

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, n: int) -> "StrategyProfile":
        """Profile with no links at all."""
        return cls([frozenset() for _ in range(n)])

    @classmethod
    def complete(cls, n: int) -> "StrategyProfile":
        """Profile where every peer links to every other peer."""
        everyone = frozenset(range(n))
        return cls([everyone - {i} for i in range(n)])

    @classmethod
    def from_dict(
        cls, n: int, links: Mapping[int, Iterable[int]]
    ) -> "StrategyProfile":
        """Profile from a sparse ``{peer: targets}`` mapping."""
        strategies: Dict[int, Iterable[int]] = {i: () for i in range(n)}
        for i, targets in links.items():
            if not 0 <= i < n:
                raise ValueError(f"peer index {i} out of range [0, {n})")
            strategies[i] = targets
        return cls([strategies[i] for i in range(n)])

    @classmethod
    def random(
        cls, n: int, link_probability: float, seed=None
    ) -> "StrategyProfile":
        """Each possible link present independently with given probability."""
        import random as _random

        if not 0.0 <= link_probability <= 1.0:
            raise ValueError("link_probability must lie in [0, 1]")
        rng = _random.Random(seed)
        return cls(
            [
                frozenset(
                    j
                    for j in range(n)
                    if j != i and rng.random() < link_probability
                )
                for i in range(n)
            ]
        )
