"""Socket transport for shard workers: framing codec + client + launcher.

:class:`~repro.core.shard_workers.ShardWorkerPool` talks to its shards
through the narrow :class:`~repro.core.shard_workers.ShardTransport`
request/reply protocol.  PR 5's :class:`PipeTransport` keeps workers on
the coordinator's host; this module takes them off it:

* A **length-prefixed binary framing codec** (:func:`encode_frame` /
  :func:`read_frame`) carries the protocol over any byte stream.  The
  format is deliberately msgpack-free: a fixed ``!4sQ`` header (magic +
  payload length) followed by a small tagged payload encoding in which
  ``numpy`` arrays — the ``rows``/``sums`` replies and the one-time
  ``init`` distance matrix, i.e. everything that scales with ``n`` —
  travel as raw C-contiguous bytes plus a dtype/shape preamble, while
  the small control values (op names, peer ids, stats dicts) ride in a
  pickle envelope.  Dispatch cost is therefore independent of payload
  *kind*: no row ever round-trips through pickle's object machinery.
* :class:`SocketTransport` speaks the existing ``reset`` / ``rebind`` /
  ``rows`` / ``sums`` / ``solve`` / ``stats`` / ``ping`` / ``stop``
  protocol over a TCP or Unix-domain socket against a standalone
  :mod:`repro.shard_server` (one ``init`` handshake ships the shard
  bounds and distance matrix, then the connection serves the same
  strictly-ordered request/reply stream a pipe would).
* :class:`SocketTransportFactory` is the launcher/placement half: given
  ``shard_hosts`` it round-robins shards across the listed servers;
  given none it **auto-spawns** a private same-host server on a
  Unix-domain socket (``repro-shard-<pid>-<token>.sock`` in the temp
  dir), so tests and CI need no external setup.  The factory owns the
  spawned server's lifecycle — the pool closes it after the transports.

Wire format (all integers big-endian)::

    frame   := "RSF1" | u64 payload-length | payload
    payload := tagged value
    tagged  := "N"                                   (None)
             | "T" u32 count tagged*                 (tuple)
             | "A" u8 dtype-len dtype-str u8 ndim
                   u64*ndim shape raw-bytes          (ndarray, C order)
             | "P" u64 length pickle-bytes           (small control values)

A corrupt magic, an oversized length, or a stream that ends mid-frame
raises :class:`FramingError`; a clean EOF *between* frames raises
:class:`EOFError` (the far side closed in an orderly way).
"""

from __future__ import annotations

import os
import pickle
import socket
import struct
import subprocess
import sys
import tempfile
import time
import uuid
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.shard_workers import ShardTransport, ShardWorkerError

__all__ = [
    "FramingError",
    "MAGIC",
    "encode_frame",
    "decode_frame",
    "encode_payload",
    "decode_payload",
    "read_frame",
    "send_frame",
    "recv_frame",
    "parse_address",
    "format_address",
    "create_listener",
    "bound_address",
    "connect_address",
    "SocketTransport",
    "SocketTransportFactory",
]

MAGIC = b"RSF1"
_HEADER = struct.Struct("!4sQ")
HEADER_SIZE = _HEADER.size

#: Hard ceiling on one frame's payload (16 GiB — far above any real
#: ``rows`` reply); a length beyond it means a corrupt or hostile
#: header, not a big array, so the decoder fails fast instead of trying
#: to allocate it.
MAX_FRAME_BYTES = 1 << 34

_TAG_NONE = b"N"
_TAG_TUPLE = b"T"
_TAG_ARRAY = b"A"
_TAG_PICKLE = b"P"

_U8 = struct.Struct("!B")
_U32 = struct.Struct("!I")
_U64 = struct.Struct("!Q")


class FramingError(ConnectionError):
    """The byte stream does not hold a well-formed frame."""


# ----------------------------------------------------------------------
# Payload codec
# ----------------------------------------------------------------------
def _encode_value(value, chunks: List[bytes]) -> None:
    if value is None:
        chunks.append(_TAG_NONE)
    elif isinstance(value, tuple):
        chunks.append(_TAG_TUPLE)
        chunks.append(_U32.pack(len(value)))
        for item in value:
            _encode_value(item, chunks)
    elif isinstance(value, np.ndarray) and value.dtype != object:
        array = np.ascontiguousarray(value)
        dtype = array.dtype.str.encode("ascii")
        chunks.append(_TAG_ARRAY)
        chunks.append(_U8.pack(len(dtype)))
        chunks.append(dtype)
        chunks.append(_U8.pack(array.ndim))
        for dim in array.shape:
            chunks.append(_U64.pack(dim))
        chunks.append(array.tobytes())
    else:
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        chunks.append(_TAG_PICKLE)
        chunks.append(_U64.pack(len(blob)))
        chunks.append(blob)


def encode_payload(value) -> bytes:
    """Tagged-payload bytes for one protocol value (no frame header)."""
    chunks: List[bytes] = []
    _encode_value(value, chunks)
    return b"".join(chunks)


def _need(view: memoryview, offset: int, count: int) -> None:
    if offset + count > len(view):
        raise FramingError(
            f"payload truncated: need {count} bytes at offset {offset}, "
            f"have {len(view) - offset}"
        )


def _decode_value(view: memoryview, offset: int) -> Tuple[object, int]:
    _need(view, offset, 1)
    tag = bytes(view[offset : offset + 1])
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TUPLE:
        _need(view, offset, _U32.size)
        (count,) = _U32.unpack_from(view, offset)
        offset += _U32.size
        items = []
        for _ in range(count):
            item, offset = _decode_value(view, offset)
            items.append(item)
        return tuple(items), offset
    if tag == _TAG_ARRAY:
        _need(view, offset, _U8.size)
        (dtype_len,) = _U8.unpack_from(view, offset)
        offset += _U8.size
        _need(view, offset, dtype_len)
        dtype = np.dtype(bytes(view[offset : offset + dtype_len]).decode("ascii"))
        offset += dtype_len
        _need(view, offset, _U8.size)
        (ndim,) = _U8.unpack_from(view, offset)
        offset += _U8.size
        shape = []
        for _ in range(ndim):
            _need(view, offset, _U64.size)
            (dim,) = _U64.unpack_from(view, offset)
            offset += _U64.size
            shape.append(dim)
        nbytes = int(dtype.itemsize * int(np.prod(shape, dtype=np.int64)))
        _need(view, offset, nbytes)
        # .copy() detaches from the receive buffer and yields a normal
        # writable C-contiguous array, exactly what a local build
        # would have produced.
        array = (
            np.frombuffer(view[offset : offset + nbytes], dtype=dtype)
            .reshape(shape)
            .copy()
        )
        offset += nbytes
        return array, offset
    if tag == _TAG_PICKLE:
        _need(view, offset, _U64.size)
        (length,) = _U64.unpack_from(view, offset)
        offset += _U64.size
        _need(view, offset, length)
        value = pickle.loads(view[offset : offset + length])
        offset += length
        return value, offset
    raise FramingError(f"unknown payload tag {tag!r}")


def decode_payload(data: Union[bytes, memoryview]):
    """Decode one tagged payload; the buffer must hold exactly one value."""
    view = memoryview(data)
    value, offset = _decode_value(view, 0)
    if offset != len(view):
        raise FramingError(
            f"payload has {len(view) - offset} trailing bytes after value"
        )
    return value


# ----------------------------------------------------------------------
# Frame layer
# ----------------------------------------------------------------------
def encode_frame(value) -> bytes:
    """One complete wire frame (header + payload) for ``value``."""
    payload = encode_payload(value)
    if len(payload) > MAX_FRAME_BYTES:  # pragma: no cover - 16 GiB payload
        raise FramingError(f"payload of {len(payload)} bytes exceeds frame cap")
    return _HEADER.pack(MAGIC, len(payload)) + payload


def decode_frame(data: Union[bytes, memoryview]):
    """Decode one complete frame held in ``data``."""
    view = memoryview(data)
    if len(view) < HEADER_SIZE:
        raise FramingError(f"frame shorter than its {HEADER_SIZE}-byte header")
    magic, length = _HEADER.unpack_from(view, 0)
    if magic != MAGIC:
        raise FramingError(f"bad frame magic {bytes(magic)!r}")
    if length > MAX_FRAME_BYTES:
        raise FramingError(f"frame length {length} exceeds cap")
    if len(view) - HEADER_SIZE != length:
        raise FramingError(
            f"frame header promises {length} payload bytes, "
            f"buffer holds {len(view) - HEADER_SIZE}"
        )
    return decode_payload(view[HEADER_SIZE:])


def _read_exact(read: Callable[[int], bytes], count: int, *, eof_ok: bool) -> bytes:
    """Gather exactly ``count`` bytes from a short-read-prone ``read``.

    ``read(n)`` may return any number of bytes from 1 to ``n`` (sockets
    do); an empty return means EOF.  EOF before the first byte raises
    :class:`EOFError` when ``eof_ok`` (an orderly close between frames),
    :class:`FramingError` otherwise (the stream died mid-frame).
    """
    parts: List[bytes] = []
    remaining = count
    while remaining:
        chunk = read(remaining)
        if not chunk:
            if not parts and eof_ok:
                raise EOFError("stream closed between frames")
            raise FramingError(
                f"stream truncated: {count - remaining} of {count} bytes "
                f"before EOF"
            )
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


def read_frame(read: Callable[[int], bytes]):
    """Read one frame through ``read(n)`` (e.g. ``sock.recv``).

    Raises :class:`EOFError` on a clean close before any header byte and
    :class:`FramingError` on corruption or a mid-frame disconnect.
    """
    header = _read_exact(read, HEADER_SIZE, eof_ok=True)
    magic, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise FramingError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME_BYTES:
        raise FramingError(f"frame length {length} exceeds cap")
    payload = _read_exact(read, length, eof_ok=False) if length else b""
    return decode_payload(payload)


def send_frame(sock: socket.socket, value) -> None:
    """Encode ``value`` and write the complete frame to ``sock``."""
    sock.sendall(encode_frame(value))


def recv_frame(sock: socket.socket):
    """Read one frame from ``sock`` (see :func:`read_frame`)."""
    return read_frame(sock.recv)


# ----------------------------------------------------------------------
# Addresses
# ----------------------------------------------------------------------
#: ``("tcp", host, port)`` or ``("unix", path)``.
Address = Union[Tuple[str, str, int], Tuple[str, str]]


def parse_address(spec: Union[str, Tuple]) -> Address:
    """Normalize ``"host:port"`` / ``"unix:/path"`` into an address tuple."""
    if isinstance(spec, tuple):
        return spec
    text = str(spec).strip()
    if text.startswith("unix:"):
        path = text[len("unix:") :]
        if not path:
            raise ValueError(f"unix address {spec!r} has no socket path")
        return ("unix", path)
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"bad shard host {spec!r}; expected 'host:port' or 'unix:/path'"
        )
    try:
        return ("tcp", host, int(port))
    except ValueError:
        raise ValueError(f"bad port in shard host {spec!r}") from None


def format_address(address: Address) -> str:
    """The spec-string form of an address tuple (for names/messages)."""
    if address[0] == "unix":
        return f"unix:{address[1]}"
    return f"{address[1]}:{address[2]}"


def create_listener(address: Union[str, Address], backlog: int = 16) -> socket.socket:
    """A bound, listening server socket for ``address``.

    TCP port 0 binds an ephemeral port (read it back through
    :func:`bound_address`); a stale Unix socket path is unlinked first —
    the ``repro-shard-*`` name is namespaced per pid, so a leftover can
    only be a dead predecessor's.
    """
    address = parse_address(address)
    if address[0] == "unix":
        path = address[1]
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(path)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((address[1], address[2]))
    sock.listen(backlog)
    return sock


def bound_address(sock: socket.socket) -> Address:
    """The address a listener actually bound (resolves TCP port 0)."""
    if sock.family == socket.AF_UNIX:
        return ("unix", sock.getsockname())
    host, port = sock.getsockname()[:2]
    return ("tcp", host, port)


#: Backoff geometry of the connect/handshake retry loops: start small
#: so an already-up server costs nothing, double towards a cap so a
#: slow-starting one is not hammered with connection attempts.
INITIAL_BACKOFF_S = 0.02
MAX_BACKOFF_S = 0.5


def _backoff_sleep(backoff: float, deadline: Optional[float]) -> float:
    """Sleep one backoff step (never past ``deadline``); next step."""
    pause = backoff
    if deadline is not None:
        pause = min(pause, max(0.0, deadline - time.monotonic()))
    if pause > 0:
        time.sleep(pause)
    return min(backoff * 2.0, MAX_BACKOFF_S)


def connect_address(
    address: Union[str, Address], timeout: Optional[float] = None
) -> socket.socket:
    """Connect to a shard server, retrying while ``timeout`` allows.

    The bounded retry-with-backoff loop absorbs the startup race
    against a server still coming up (connection refused / socket file
    not there yet), backing off exponentially from
    :data:`INITIAL_BACKOFF_S` to :data:`MAX_BACKOFF_S` between
    attempts; any error still present at the deadline propagates.
    """
    address = parse_address(address)
    deadline = None if timeout is None else time.monotonic() + timeout
    backoff = INITIAL_BACKOFF_S
    while True:
        try:
            if address[0] == "unix":
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                try:
                    sock.connect(address[1])
                except BaseException:
                    sock.close()
                    raise
                return sock
            return socket.create_connection((address[1], address[2]))
        except (ConnectionRefusedError, FileNotFoundError, OSError):
            if deadline is None or time.monotonic() >= deadline:
                raise
            backoff = _backoff_sleep(backoff, deadline)


# ----------------------------------------------------------------------
# Client transport
# ----------------------------------------------------------------------
class SocketTransport(ShardTransport):
    """One shard served by a remote :mod:`repro.shard_server` connection.

    The connection opens with an ``("init", lo, hi, dmat, options)``
    handshake that makes the server-side worker state, then carries the
    standard protocol — the same strictly-ordered request/reply stream
    as a pipe, so :class:`~repro.core.shard_workers.ShardWorkerPool`
    cannot tell the difference (which is the point of the seam).
    """

    def __init__(
        self,
        address: Union[str, Address],
        lo: int,
        hi: int,
        dmat: np.ndarray,
        backend: str = "auto",
        dynamic: bool = True,
        *,
        solver: str = "serial",
        solver_workers: int = 1,
        connect_timeout: float = 10.0,
    ) -> None:
        # Defaults first: close() must be a no-op if the connect or
        # handshake below never succeeds.
        self._sock: Optional[socket.socket] = None
        self._closed = False
        self._dead = False
        self._address = parse_address(address)
        self._name = f"repro-shard-{lo}-{hi}@{format_address(self._address)}"
        init_message = (
            "init",
            int(lo),
            int(hi),
            np.ascontiguousarray(dmat, dtype=np.float64),
            {
                "backend": backend,
                "dynamic": bool(dynamic),
                "solver": solver,
                "solver_workers": int(solver_workers),
            },
        )
        # Bounded retry-with-backoff across connect *and* handshake: a
        # server still starting up may refuse the connection or accept
        # and drop it before serving — both retry until the deadline.
        # An explicit ("error", ...) reply is a real init failure and
        # never retried (the server is up; the request is wrong).
        deadline = (
            None
            if connect_timeout is None
            else time.monotonic() + connect_timeout
        )
        backoff = INITIAL_BACKOFF_S
        while True:
            sock: Optional[socket.socket] = None
            try:
                remaining = (
                    None
                    if deadline is None
                    else max(0.0, deadline - time.monotonic())
                )
                sock = connect_address(self._address, timeout=remaining)
                send_frame(sock, init_message)
                reply = recv_frame(sock)
            except (EOFError, FramingError, OSError) as error:
                if sock is not None:
                    sock.close()
                if deadline is None or time.monotonic() >= deadline:
                    self._closed = True
                    raise ShardWorkerError(
                        f"shard worker {self._name} never came up "
                        f"({type(error).__name__}: {error})"
                    ) from error
                backoff = _backoff_sleep(backoff, deadline)
                continue
            except BaseException:
                if sock is not None:
                    sock.close()
                self._closed = True
                raise
            kind, payload = reply
            if kind == "error":
                sock.close()
                self._closed = True
                raise ShardWorkerError(
                    f"shard worker {self._name} failed:\n{payload}"
                )
            self._sock = sock
            break

    @property
    def name(self) -> str:
        return self._name

    def _peer_hung_up(self) -> bool:
        """Whether the server already closed its end (without blocking).

        The protocol is strict request/reply, so outside an exchange the
        inbound stream must be silent: a non-blocking peek that returns
        EOF (or a reset) means the far side is gone *before* this
        request — the recoverable, between-requests death.
        """
        try:
            chunk = self._sock.recv(
                1, socket.MSG_PEEK | socket.MSG_DONTWAIT
            )
        except (BlockingIOError, InterruptedError):
            return False  # nothing pending: the connection is healthy
        except OSError:
            return True  # reset / torn down under us
        return chunk == b""

    def send(self, message: Tuple) -> None:
        if self._closed:
            raise ShardWorkerError(
                f"shard worker {self._name} transport is closed"
            )
        if self._dead or self._peer_hung_up():
            self._dead = True
            raise ShardWorkerError(
                f"shard worker {self._name} died between requests "
                f"(connection closed by server)"
            )
        try:
            send_frame(self._sock, message)
        except OSError as error:
            self._dead = True
            raise ShardWorkerError(
                f"shard worker {self._name} died mid-request "
                f"({type(error).__name__})"
            ) from error

    def recv(self):
        try:
            reply = recv_frame(self._sock)
        except (EOFError, FramingError, OSError) as error:
            self._dead = True
            raise ShardWorkerError(
                f"shard worker {self._name} died mid-request "
                f"({type(error).__name__}: {error})"
            ) from error
        kind, payload = reply
        if kind == "error":
            raise ShardWorkerError(
                f"shard worker {self._name} failed:\n{payload}"
            )
        return payload

    def request(self, message: Tuple):
        self.send(message)
        return self.recv()

    @property
    def alive(self) -> bool:
        return not (self._closed or self._dead)

    def kill(self) -> None:
        """Tear the stream down abruptly (chaos drills): no ``stop``.

        The server sees an unexpected EOF on a live connection — the
        same signature as a client host dying — and discards that
        connection's worker state; the transport reports *between
        requests* on its next send.
        """
        if self._closed or self._dead:
            return
        self._dead = True
        if self._sock is not None:
            self._sock.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._sock is None:  # failed init: nothing to release
            return
        if not self._dead:
            try:
                send_frame(self._sock, ("stop",))
                self._sock.settimeout(5.0)
                recv_frame(self._sock)
            except (EOFError, FramingError, OSError):
                pass  # already gone; the socket close below suffices
        self._sock.close()


# ----------------------------------------------------------------------
# Launcher / placement
# ----------------------------------------------------------------------
class SocketTransportFactory:
    """Place shard workers on socket servers (auto-spawning by default).

    Drop-in for the ``transport_factory`` seam of
    :class:`~repro.core.shard_workers.ShardWorkerPool`: called once per
    shard with ``(lo, hi, dmat, backend, dynamic)``, returns a connected
    :class:`SocketTransport`.  With explicit ``hosts`` the shards
    round-robin across them (several shards per server are fine — each
    connection gets its own worker state).  Without hosts the factory
    spawns one private same-host server over a Unix-domain socket and
    points every shard at it; the server exits by itself once its last
    connection closes (``--auto-exit``), and :meth:`close` reaps the
    process and unlinks the socket as a backstop.
    """

    def __init__(
        self,
        hosts: Optional[Sequence[str]] = None,
        *,
        solver: str = "serial",
        solver_workers: int = 1,
        connect_timeout: float = 20.0,
    ) -> None:
        hosts = [h for h in (hosts or []) if str(h).strip()]
        self._addresses: List[Address] = [parse_address(h) for h in hosts]
        self._solver = solver
        self._solver_workers = solver_workers
        self._connect_timeout = connect_timeout
        self._server: Optional[subprocess.Popen] = None
        self._socket_path: Optional[str] = None
        self._next = 0
        #: How many times a dead auto-spawned server was replaced; the
        #: chaos harness asserts restart/reconnect actually happened.
        self.server_restarts = 0

    def _reap_dead_server(self) -> bool:
        """Clear out an auto-spawned server that has exited; True if so.

        Restart/reconnect handling for the spawned placement: when the
        private server died (crash, kill, OOM), the next placement or
        respawn must not connect to its stale socket and time out — the
        factory reaps the corpse, unlinks the socket path, and lets
        :meth:`_ensure_addresses` spawn a fresh server.
        """
        if self._server is None or self._server.poll() is None:
            return False
        self._server.wait()
        self._server = None
        path, self._socket_path = self._socket_path, None
        if path is not None:
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
        self._addresses = []
        self.server_restarts += 1
        return True

    def kill_server(self) -> None:
        """SIGKILL the auto-spawned server (chaos drills); no-op otherwise.

        The next transport request observes the dead connection, and the
        next placement through the factory spawns a replacement server.
        """
        if self._server is not None and self._server.poll() is None:
            self._server.kill()
            self._server.wait()

    def _ensure_addresses(self) -> None:
        self._reap_dead_server()
        if self._addresses:
            return
        path = os.path.join(
            tempfile.gettempdir(),
            f"repro-shard-{os.getpid()}-{uuid.uuid4().hex[:8]}.sock",
        )
        import repro

        package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing else package_root + os.pathsep + existing
        )
        self._server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.shard_server",
                "--listen",
                f"unix:{path}",
                "--auto-exit",
                "--quiet",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
        )
        self._socket_path = path
        self._addresses = [("unix", path)]

    def __call__(
        self,
        lo: int,
        hi: int,
        dmat: np.ndarray,
        backend: str = "auto",
        dynamic: bool = True,
    ) -> SocketTransport:
        self._ensure_addresses()
        address = self._addresses[self._next % len(self._addresses)]
        self._next += 1
        try:
            return SocketTransport(
                address,
                lo,
                hi,
                dmat,
                backend,
                dynamic,
                solver=self._solver,
                solver_workers=self._solver_workers,
                connect_timeout=self._connect_timeout,
            )
        except (OSError, ShardWorkerError) as error:
            detail = format_address(address)
            if self._server is not None and self._server.poll() is not None:
                detail += (
                    f" (auto-spawned server exited with "
                    f"code {self._server.returncode})"
                )
            raise ShardWorkerError(
                f"could not place shard [{lo}, {hi}) on {detail}: {error}"
            ) from error

    def close(self) -> None:
        """Reap the auto-spawned server (if any); idempotent."""
        server, self._server = self._server, None
        if server is not None:
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck server
                server.terminate()
                try:
                    server.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    server.kill()
                    server.wait()
        path, self._socket_path = self._socket_path, None
        if path is not None:
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
