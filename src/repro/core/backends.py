"""Pluggable execution backends for independent best-response solves.

A gain sweep (:meth:`repro.core.evaluator.GameEvaluator.gain_sweep`)
ends in a batch of *independent, read-only* solver calls — one
facility-location solve per peer against that peer's service matrix.
How those calls execute is a deployment decision, not a game-theoretic
one, so it lives behind a tiny protocol:

:class:`SerialBackend`
    Plain loop in the calling thread (the default; byte-identical to
    the pre-backend engine).
:class:`ThreadBackend`
    A persistent :class:`~concurrent.futures.ThreadPoolExecutor`.  Wins
    are capped by the GIL on the numpy-light solver paths, but threads
    share every cache for free.
:class:`ProcessBackend`
    A persistent :class:`~concurrent.futures.ProcessPoolExecutor` whose
    workers *attach* to the evaluator's shareable
    :mod:`~repro.core.service_store` (shared-memory segments or spill-
    file windows) and solve against the parent's pages directly — tasks
    carry ``(store_handle, peer, strategy, profile_digest)``, never the
    ``W`` matrix itself, so dispatch cost is independent of ``n``.

Every backend runs the same pure function
(:func:`~repro.core.best_response.best_response_from_service`) on the
same bytes, so results — and therefore dynamics trajectories — are
identical across backends and worker counts.  The test-suite pins this.

Backends are resolved once per engine (:func:`resolve_backend`) so the
pools persist across sweeps; ``close()`` (or garbage collection) tears
the pools down.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.best_response import (
    BestResponseResult,
    ServiceCosts,
    best_response_from_service,
)
from repro.core.service_store import attach_service_weights

__all__ = [
    "SolverBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "resolve_backend",
    "BACKEND_SPECS",
]

#: ``--backend`` spec strings accepted by :func:`resolve_backend`.
#: ``"shard"`` routes solves to shard worker processes/servers (see
#: :class:`~repro.core.shard_workers.ShardSolverBackend`) and needs a
#: sharded evaluator with ``shard_placement`` ``"process"``/``"socket"``.
BACKEND_SPECS = ("serial", "thread", "process", "shard")

#: A picklable solve task: ``(store_handle, peer, strategy, alpha,
#: method, profile_digest)``.  The digest identifies which bound profile
#: the strategy (and the attached matrix's bytes) belong to — pure
#: observability/debugging metadata; the solve is a function of the
#: other fields alone.
SolveTask = Tuple[Tuple, int, Tuple[int, ...], float, str, int]


class SolverBackend:
    """Execution policy for a batch of independent response solves.

    :meth:`run_solves` receives the peers to solve, a ``solve_local``
    closure (solves one peer in this process against the evaluator's
    caches) and a ``make_task`` closure (builds the picklable
    :data:`SolveTask` for one peer, attaching a store handle).  In-
    process backends use ``solve_local``; distributed ones use
    ``make_task``.  Results come back in ``peers`` order.
    """

    name = "serial"
    #: True when solves cross process boundaries, i.e. the evaluator
    #: must expose its service matrices through a shareable store.
    distributed = False
    #: True when the backend consumes ``make_task`` tuples but sources
    #: the matrices itself (shard-side solves): the evaluator skips its
    #: local service build/refresh for dispatched peers and no store
    #: handle is attached to the tasks.
    wants_tasks = False

    def __init__(self, workers: int = 1) -> None:
        self.workers = max(1, int(workers))

    def run_solves(
        self,
        peers: Sequence[int],
        solve_local: Callable[[int], BestResponseResult],
        make_task: Optional[Callable[[int], SolveTask]] = None,
    ) -> List[BestResponseResult]:
        return [solve_local(peer) for peer in peers]

    def close(self) -> None:
        """Release pool resources (no-op for poolless backends)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={self.workers})"


class SerialBackend(SolverBackend):
    """Solve in the calling thread — the reference execution order."""

    name = "serial"


class ThreadBackend(SolverBackend):
    """Thread-pool solves sharing the caller's caches (GIL-capped)."""

    name = "thread"

    def __init__(self, workers: int = 2) -> None:
        super().__init__(workers)
        self._pool = None
        self._finalizer: Optional[weakref.finalize] = None

    def _executor(self):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-solver",
            )
            self._finalizer = weakref.finalize(
                self, ThreadBackend._shutdown, self._pool
            )
        return self._pool

    @staticmethod
    def _shutdown(pool) -> None:
        pool.shutdown(wait=False, cancel_futures=True)

    def run_solves(
        self,
        peers: Sequence[int],
        solve_local: Callable[[int], BestResponseResult],
        make_task: Optional[Callable[[int], SolveTask]] = None,
    ) -> List[BestResponseResult]:
        if len(peers) <= 1 or self.workers <= 1:
            return [solve_local(peer) for peer in peers]
        return list(self._executor().map(solve_local, peers))

    def close(self) -> None:
        if self._finalizer is not None:
            self._finalizer()
            self._pool = None
            self._finalizer = None


# ----------------------------------------------------------------------
# Process pool
# ----------------------------------------------------------------------
#: Worker-side cache of candidate tuples; every service matrix built by
#: the evaluator prices all first hops, so candidates are always
#: ``(0..n-1) - {peer}`` and need not travel with the task.
_CANDIDATE_CACHE: Dict[Tuple[int, int], Tuple[int, ...]] = {}


def _candidates_of(peer: int, n: int) -> Tuple[int, ...]:
    key = (peer, n)
    cached = _CANDIDATE_CACHE.get(key)
    if cached is None:
        cached = tuple(j for j in range(n) if j != peer)
        _CANDIDATE_CACHE[key] = cached
    return cached


def solve_service_task(task: SolveTask) -> BestResponseResult:
    """Pool-worker entry point: attach the matrix, solve, return.

    The matrix bytes never cross the pipe — only the handle does; the
    worker maps the owner's shared-memory segment / spill-file window
    (cached per process) and runs the same pure solver the serial
    backend runs.
    """
    handle, peer, strategy, alpha, method, _digest = task
    weights = attach_service_weights(handle)
    service = ServiceCosts(peer, _candidates_of(peer, weights.shape[1]), weights)
    return best_response_from_service(service, strategy, alpha, method)


class ProcessBackend(SolverBackend):
    """Process-pool solves over a shared-memory service-matrix store.

    Workers receive :data:`SolveTask` tuples and attach the evaluator's
    store (see module docstring).  The pool is created lazily on first
    use — with the ``fork`` start method where available, so workers
    inherit the parent's imports — and persists across sweeps; in-place
    matrix repairs between sweeps are visible to the workers through the
    shared mappings without any re-dispatch.
    """

    name = "process"
    distributed = True

    def __init__(
        self, workers: int = 2, chunksize: Optional[int] = None
    ) -> None:
        super().__init__(workers)
        #: Tasks per pool dispatch.  ``None`` batches each sweep into
        #: ``ceil(tasks / workers)`` groups — one round of chunks, so a
        #: small-n sweep pays ``workers`` IPC round trips instead of one
        #: per task.  Pass an explicit value (e.g. 1) to override.
        self.chunksize = chunksize
        self._pool = None
        self._finalizer: Optional[weakref.finalize] = None

    def _executor(self):
        if self._pool is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            context = None
            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context
            )
            self._finalizer = weakref.finalize(
                self, ProcessBackend._shutdown, self._pool
            )
        return self._pool

    @staticmethod
    def _shutdown(pool) -> None:
        pool.shutdown(wait=False, cancel_futures=True)

    def run_solves(
        self,
        peers: Sequence[int],
        solve_local: Callable[[int], BestResponseResult],
        make_task: Optional[Callable[[int], SolveTask]] = None,
    ) -> List[BestResponseResult]:
        if len(peers) <= 1:
            # Pool round-trips cost more than a singleton solve; results
            # are identical either way (same pure function, same bytes).
            return [solve_local(peer) for peer in peers]
        if make_task is None:
            raise RuntimeError(
                "ProcessBackend needs store-handle tasks; the evaluator "
                "must expose a shareable service store"
            )
        tasks = [make_task(peer) for peer in peers]
        chunksize = self.chunksize
        if chunksize is None:
            # Per-sweep batching: ceil(tasks / workers) puts every
            # worker's share in a single submission, which amortizes the
            # per-task executor/pickle overhead that dominates small-n
            # sweeps.  The solves stay independent pure functions, so
            # grouping cannot change any result.
            chunksize = -(-len(tasks) // self.workers)
        chunksize = max(1, int(chunksize))
        return list(
            self._executor().map(solve_service_task, tasks, chunksize=chunksize)
        )

    def close(self) -> None:
        if self._finalizer is not None:
            self._finalizer()
            self._pool = None
            self._finalizer = None


# ----------------------------------------------------------------------
def resolve_backend(spec, workers: int = 1) -> SolverBackend:
    """Normalize a backend spec into a :class:`SolverBackend` instance.

    ``None`` preserves the legacy ``workers=N`` behavior: a thread pool
    when ``workers > 1``, else serial.  Strings name the standard
    backends (:data:`BACKEND_SPECS`), sized by ``workers``; instances
    pass through unchanged (their own worker count wins).
    """
    if isinstance(spec, SolverBackend):
        return spec
    if spec is None:
        return ThreadBackend(workers) if workers > 1 else SerialBackend()
    if spec == "serial":
        return SerialBackend()
    if spec == "thread":
        return ThreadBackend(max(2, workers))
    if spec == "process":
        return ProcessBackend(max(2, workers))
    if spec == "shard":
        # Deferred import: shard_workers imports this module.  The
        # instance starts unbound; the sharded evaluator binds its live
        # worker pool per sweep (drivers resolve backends before any
        # evaluator exists).
        from repro.core.shard_workers import ShardSolverBackend

        return ShardSolverBackend(workers)
    raise ValueError(
        f"unknown solver backend {spec!r}; expected one of {BACKEND_SPECS}, "
        f"None, or a SolverBackend instance"
    )
