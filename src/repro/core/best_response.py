"""Best-response computation for the selfish topology game.

A shortest path from peer ``i`` never revisits ``i`` (weights are
non-negative), so with ``H = G[s]`` minus ``i``'s out-edges::

    d_G(i, j) = min_{u in s_i} ( d(i, u) + d_H(u, j) )

The best response of ``i`` therefore minimizes, over candidate link sets
``S``::

    f(S) = alpha * |S| + sum_{j != i} min_{u in S} W[u, j]

where ``W[u, j] = (d(i, u) + d_H(u, j)) / d(i, j)`` is the *normalized
service cost* of reaching ``j`` through first hop ``u``.  This is an
uncapacitated facility-location problem with uniform opening cost ``alpha``
(NP-hard in general — consistent with the literature on network-creation
games), which we solve:

* exactly, by branch and bound with greedy warm start, candidate dominance
  elimination and suffix-minimum lower bounds (``method="exact"``);
* exactly, by brute-force subset enumeration (``method="brute"``, tiny
  instances; used to validate the branch and bound);
* approximately, by greedy addition followed by drop/swap local search
  (``method="greedy"``, scales to large ``n``).

The same machinery answers the cheaper question "does *any* improving
deviation exist?" (:func:`find_improving_deviation`), which is what Nash
verification needs: the branch and bound starts with the peer's current
cost as incumbent and exits on the first strictly better solution.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.profile import StrategyProfile
from repro.core.topology import overlay_from_matrix
from repro.graphs.digraph import WeightedDigraph
from repro.graphs.shortest_paths import multi_source_distances

__all__ = [
    "BestResponseResult",
    "ServiceCosts",
    "compute_service_costs",
    "service_costs_from_overlay",
    "service_cost_rows",
    "normalize_service_rows",
    "strategy_cost",
    "peer_cost",
    "best_response",
    "best_response_from_service",
    "find_improving_deviation",
    "improving_deviation_from_service",
    "greedy_local_search_reference",
    "dominance_filter",
    "dominance_filter_reference",
    "improvement_tolerance",
    "RELATIVE_TOLERANCE",
]

#: Relative tolerance below which cost differences are treated as ties
#: (a deviation must beat the current cost by more than this to count).
RELATIVE_TOLERANCE = 1e-9

_METHODS = ("exact", "brute", "greedy")


@dataclass(frozen=True)
class BestResponseResult:
    """Outcome of a best-response computation for one peer.

    Attributes
    ----------
    peer:
        The responding peer.
    strategy:
        The (new) out-neighbor set found.
    cost:
        Individual cost of the peer under ``strategy``.
    current_cost:
        Individual cost of the peer under its current strategy.
    improved:
        True when ``cost`` beats ``current_cost`` beyond tolerance.
    method:
        Which solver produced the result.
    """

    peer: int
    strategy: FrozenSet[int]
    cost: float
    current_cost: float
    improved: bool
    method: str

    @property
    def gain(self) -> float:
        """Cost reduction achieved by switching (0 when not improved)."""
        if not self.improved:
            return 0.0
        return self.current_cost - self.cost


@dataclass(frozen=True)
class ServiceCosts:
    """Normalized service-cost matrix of a responding peer.

    ``weights[k, j]`` is the stretch peer ``peer`` would suffer to target
    ``j`` if its *only* useful link were ``candidates[k]``.  Column ``peer``
    is identically 0 so that row minima can be summed directly.
    """

    peer: int
    candidates: Tuple[int, ...]
    weights: np.ndarray

    @property
    def num_candidates(self) -> int:
        return len(self.candidates)

    @property
    def num_peers(self) -> int:
        return int(self.weights.shape[1]) if self.weights.size else 1


def normalize_service_rows(
    distance_matrix: np.ndarray,
    peer: int,
    sources: Sequence[int],
    dist_h: np.ndarray,
) -> np.ndarray:
    """Turn raw ``d_H(u, j)`` rows into normalized service-cost rows.

    ``dist_h[k, j]`` must hold the distance from ``sources[k]`` to ``j``
    in ``H`` (the overlay minus ``peer``'s out-edges).  Shared by the
    per-peer and blocked-batch build paths so both produce bitwise
    identical weights from identical distances.
    """
    direct = distance_matrix[peer]
    service = direct[list(sources)][:, None] + dist_h
    with np.errstate(divide="ignore", invalid="ignore"):
        weights = service / direct[None, :]
    zero_direct = direct == 0
    zero_direct[peer] = False
    if zero_direct.any():
        cols = np.nonzero(zero_direct)[0]
        for col in cols:
            weights[:, col] = np.where(service[:, col] == 0.0, 1.0, math.inf)
    weights[:, peer] = 0.0
    return weights


def service_cost_rows(
    distance_matrix: np.ndarray,
    stripped_overlay: WeightedDigraph,
    peer: int,
    sources: Sequence[int],
    backend: str = "auto",
) -> np.ndarray:
    """Normalized service-cost rows for a subset of first-hop ``sources``.

    ``stripped_overlay`` must already have ``peer``'s out-edges removed.
    This is the row-granular core shared by :func:`compute_service_costs`
    (all candidates at once) and the incremental cache in
    :mod:`repro.core.evaluator` (only the dirtied rows).
    """
    dist_h = multi_source_distances(stripped_overlay, list(sources), backend=backend)
    return normalize_service_rows(distance_matrix, peer, sources, dist_h)


def service_costs_from_overlay(
    distance_matrix: np.ndarray,
    overlay: WeightedDigraph,
    peer: int,
    backend: str = "auto",
) -> ServiceCosts:
    """Service-cost matrix ``W`` for ``peer`` given a prebuilt overlay."""
    n = overlay.num_nodes
    if not 0 <= peer < n:
        raise IndexError(f"peer {peer} out of range [0, {n})")
    candidates = tuple(j for j in range(n) if j != peer)
    if not candidates:
        return ServiceCosts(peer, (), np.zeros((0, 1)))
    stripped = overlay.copy_without_out_edges(peer)
    weights = service_cost_rows(
        distance_matrix, stripped, peer, candidates, backend
    )
    return ServiceCosts(peer, candidates, weights)


def compute_service_costs(
    distance_matrix: np.ndarray,
    profile: StrategyProfile,
    peer: int,
    backend: str = "auto",
) -> ServiceCosts:
    """Build the normalized service-cost matrix ``W`` for ``peer``.

    One multi-source Dijkstra over ``H`` (the overlay without ``peer``'s
    out-edges) prices every candidate first hop against every target.
    """
    n = profile.n
    if not 0 <= peer < n:
        raise IndexError(f"peer {peer} out of range [0, {n})")
    overlay = overlay_from_matrix(distance_matrix, profile)
    return service_costs_from_overlay(distance_matrix, overlay, peer, backend)


def strategy_cost(
    service: ServiceCosts, strategy: Sequence[int], alpha: float
) -> float:
    """Individual cost of playing ``strategy`` given precomputed ``W``."""
    k = len(strategy)
    if service.num_peers == 1:
        return alpha * k
    if k == 0:
        return math.inf
    index_of = {c: idx for idx, c in enumerate(service.candidates)}
    rows = [index_of[s] for s in strategy]
    return alpha * k + float(service.weights[rows].min(axis=0).sum())


def peer_cost(
    distance_matrix: np.ndarray,
    profile: StrategyProfile,
    peer: int,
    alpha: float,
    backend: str = "auto",
) -> float:
    """Individual cost ``c_i(s)`` of one peer via its service-cost matrix.

    Shared by :meth:`repro.core.game.TopologyGame.cost` and the cached
    evaluator path so the two never diverge.
    """
    service = compute_service_costs(distance_matrix, profile, peer, backend)
    return strategy_cost(service, sorted(profile.strategy(peer)), alpha)


# ----------------------------------------------------------------------
# Greedy + local search
# ----------------------------------------------------------------------
def _greedy_with_local_search(
    service: ServiceCosts, alpha: float
) -> Tuple[List[int], float]:
    """Greedy addition then drop/swap local search (fully vectorized).

    Returns the chosen candidate *row indices* and the achieved cost.
    Uses an (infinite-target-count, finite-cost) lexicographic key so the
    greedy phase makes progress even while some targets are unreachable.

    Every greedy-addition step and every swap scan scores *all* candidate
    rows in one ``(k, n)`` numpy block instead of a per-row Python loop —
    the solver is the hot path of whole-population gain sweeps, and this
    turns an O(k) loop of small numpy calls into a handful of large ones.
    Candidate enumeration order and tie-breaking mirror the reference
    loop exactly: greedy addition takes the lexicographically best key
    breaking ties toward the lowest row index, the swap scan takes the
    first (lowest-index) strictly improving candidate.
    """
    weights = service.weights
    k, n = weights.shape
    chosen: List[int] = []
    in_chosen = np.zeros(k, dtype=bool)
    minima = np.full(n, math.inf)
    minima[service.peer] = 0.0

    def block_keys(
        block: np.ndarray, num_links: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-row (unreachable-count, finite-cost) key components."""
        infinite = np.isinf(block)
        num_inf = infinite.sum(axis=1).astype(float)
        finite = np.where(infinite, 0.0, block).sum(axis=1)
        return num_inf, finite + alpha * num_links

    def cost_key(num_links: int, m: np.ndarray) -> Tuple[int, float]:
        infinite = np.isinf(m)
        finite = float(np.where(infinite, 0.0, m).sum())
        return (int(infinite.sum()), alpha * num_links + finite)

    current_key = cost_key(0, minima)
    # Greedy addition.
    while True:
        block = np.minimum(minima[None, :], weights)
        num_inf, finite = block_keys(block, len(chosen) + 1)
        num_inf[in_chosen] = math.inf
        best_row = int(np.lexsort((finite, num_inf))[0])
        best_key = (num_inf[best_row], finite[best_row])
        if in_chosen[best_row] or not best_key < current_key:
            break
        chosen.append(best_row)
        in_chosen[best_row] = True
        minima = block[best_row]
        current_key = (int(best_key[0]), float(best_key[1]))
    # Local search: drops and swaps until fixpoint.
    improved = True
    while improved and chosen:
        improved = False
        for row in list(chosen):
            rest = [r for r in chosen if r != row]
            rest_minima = _minima_of(weights, rest, service.peer)
            key = cost_key(len(rest), rest_minima)
            if key < current_key:
                chosen, minima, current_key = rest, rest_minima, key
                in_chosen[row] = False
                improved = True
                break
            block = np.minimum(rest_minima[None, :], weights)
            num_inf, finite = block_keys(block, len(rest) + 1)
            num_inf[in_chosen] = math.inf
            qualifies = (num_inf < current_key[0]) | (
                (num_inf == current_key[0]) & (finite < current_key[1])
            )
            hits = np.nonzero(qualifies)[0]
            if hits.size:
                other = int(hits[0])
                chosen = rest + [other]
                in_chosen[row] = False
                in_chosen[other] = True
                minima = block[other]
                current_key = (int(num_inf[other]), float(finite[other]))
                improved = True
                break
    num_inf_final, cost = current_key
    return chosen, (math.inf if num_inf_final else cost)


def greedy_local_search_reference(
    service: ServiceCosts, alpha: float
) -> Tuple[List[int], float]:
    """Loop-based reference for :func:`_greedy_with_local_search`.

    The pre-vectorization implementation, kept (like
    ``find_improving_flip_naive``) as a validation baseline: property
    tests cross-check the vectorized solver against it, and benchmarks
    use it to measure the solver speedup.  The two agree exactly except
    on mathematically tied candidates, where summation-order differences
    (compacted versus zero-padded finite sums) may break the tie
    differently; both picks then cost the same.
    """
    weights = service.weights
    k, n = weights.shape
    chosen: List[int] = []
    minima = np.full(n, math.inf)
    minima[service.peer] = 0.0

    def cost_key(num_links: int, m: np.ndarray) -> Tuple[int, float]:
        finite = m[np.isfinite(m)]
        return (int(np.isinf(m).sum()), alpha * num_links + float(finite.sum()))

    current_key = cost_key(0, minima)
    # Greedy addition.
    while True:
        best_row, best_key, best_minima = -1, current_key, None
        for row in range(k):
            if row in chosen:
                continue
            candidate_minima = np.minimum(minima, weights[row])
            key = cost_key(len(chosen) + 1, candidate_minima)
            if key < best_key:
                best_row, best_key, best_minima = row, key, candidate_minima
        if best_row < 0:
            break
        chosen.append(best_row)
        minima = best_minima
        current_key = best_key
    # Local search: drops and swaps until fixpoint.
    improved = True
    while improved and chosen:
        improved = False
        for row in list(chosen):
            rest = [r for r in chosen if r != row]
            rest_minima = _minima_of(weights, rest, service.peer)
            key = cost_key(len(rest), rest_minima)
            if key < current_key:
                chosen, minima, current_key = rest, rest_minima, key
                improved = True
                break
            for other in range(k):
                if other in chosen:
                    continue
                swapped = rest + [other]
                swap_minima = np.minimum(rest_minima, weights[other])
                key = cost_key(len(swapped), swap_minima)
                if key < current_key:
                    chosen, minima, current_key = swapped, swap_minima, key
                    improved = True
                    break
            if improved:
                break
    num_inf, cost = current_key
    return chosen, (math.inf if num_inf else cost)


def _minima_of(weights: np.ndarray, rows: Sequence[int], peer: int) -> np.ndarray:
    if not rows:
        minima = np.full(weights.shape[1], math.inf)
        minima[peer] = 0.0
        return minima
    return weights[list(rows)].min(axis=0)


# ----------------------------------------------------------------------
# Exact: branch and bound
# ----------------------------------------------------------------------
#: Broadcast-block size cap for the vectorized dominance filter: each
#: chunk materializes a ``(k, chunk, n)`` boolean block; 2^24 cells keeps
#: that under ~32 MiB of comparison temporaries at any ``k``.
_DOMINANCE_CHUNK_CELLS = 1 << 24


def dominance_filter(weights: np.ndarray) -> List[int]:
    """Indices of candidate rows that are not (weakly) dominated.

    Row ``u`` is dominated by ``v`` when ``W[v, j] <= W[u, j]`` for every
    target ``j``; dominated candidates never appear in some optimal
    solution, so they can be dropped (ties keep the lower index).

    One broadcast comparison replaces the historical O(k^2) Python loop
    (kept as :func:`dominance_filter_reference`): ``le[v, u]`` /
    ``lt[v, u]`` are reduced over the target axis for all pairs at once,
    chunked over ``u`` so the boolean temporaries stay bounded.  The
    predicate — and therefore the returned index list — is identical to
    the reference for every input, ``inf`` entries included (``inf <=
    inf`` and the loop agree elementwise).
    """
    k = weights.shape[0]
    if k <= 1:
        return list(range(k))
    n = max(1, weights.shape[1])
    keep = np.ones(k, dtype=bool)
    chunk = max(1, _DOMINANCE_CHUNK_CELLS // (k * n))
    v_index = np.arange(k)[:, None]
    for start in range(0, k, chunk):
        block = weights[start : start + chunk]  # the "u" rows
        le = (weights[:, None, :] <= block[None, :, :]).all(axis=2)
        lt = (weights[:, None, :] < block[None, :, :]).any(axis=2)
        u_index = np.arange(start, start + block.shape[0])[None, :]
        dominates = le & (lt | (v_index < u_index)) & (v_index != u_index)
        keep[start : start + block.shape[0]] = ~dominates.any(axis=0)
    return np.nonzero(keep)[0].tolist()


def dominance_filter_reference(weights: np.ndarray) -> List[int]:
    """Loop-based reference oracle for :func:`dominance_filter`.

    The pre-vectorization implementation, kept (like
    ``greedy_local_search_reference``) as a validation baseline for
    property tests and benchmarks.
    """
    k = weights.shape[0]
    keep = []
    for u in range(k):
        dominated = False
        for v in range(k):
            if v == u:
                continue
            le = weights[v] <= weights[u]
            if le.all() and (v < u or (weights[v] < weights[u]).any()):
                dominated = True
                break
        if not dominated:
            keep.append(u)
    return keep


_dominance_filter = dominance_filter


def _branch_and_bound(
    service: ServiceCosts,
    alpha: float,
    incumbent_cost: float,
    incumbent_rows: Optional[List[int]],
    first_improvement: bool,
) -> Tuple[Optional[List[int]], float]:
    """Exact minimization of ``f(S)`` by DFS branch and bound.

    ``incumbent_cost``/``incumbent_rows`` seed the search; when
    ``first_improvement`` is set the search exits on the first complete
    solution strictly below the seed cost (Nash-verification mode).
    Returns ``(rows, cost)`` of the best solution found (rows is None when
    nothing beat the seed).
    """
    weights = service.weights
    n = weights.shape[1]
    rows_kept = _dominance_filter(weights)
    if not rows_kept:
        return None, incumbent_cost
    # Order candidates by the cost they achieve alone (ascending) so that
    # the inclusion-first DFS finds strong incumbents early.
    solo = [
        (float(np.where(np.isinf(weights[r]), 1e300, weights[r]).sum()), r)
        for r in rows_kept
    ]
    solo.sort()
    order = [r for _, r in solo]
    ordered = weights[order]
    k = len(order)
    # suffix_min[idx] = columnwise min over ordered rows idx..k-1.
    suffix_min = np.full((k + 1, n), math.inf)
    suffix_min[k, service.peer] = 0.0
    for idx in range(k - 1, -1, -1):
        suffix_min[idx] = np.minimum(suffix_min[idx + 1], ordered[idx])

    best_cost = incumbent_cost
    best_rows: Optional[List[int]] = list(incumbent_rows) if incumbent_rows else None
    found_new = False
    start_minima = np.full(n, math.inf)
    start_minima[service.peer] = 0.0
    # Iterative DFS; each frame is (idx, chosen, minima).
    stack: List[Tuple[int, List[int], np.ndarray]] = [(0, [], start_minima)]
    while stack:
        idx, chosen, minima = stack.pop()
        open_cost = alpha * len(chosen)
        if idx >= k:
            total = open_cost + float(minima.sum())
            if total < best_cost - _tolerance(best_cost):
                best_cost, best_rows, found_new = total, chosen, True
                if first_improvement:
                    break
            continue
        bound = open_cost + float(np.minimum(minima, suffix_min[idx]).sum())
        if bound >= best_cost - _tolerance(best_cost):
            continue
        # Exclusion branch pushed first so the inclusion branch (better
        # incumbents) is explored first by the LIFO stack.
        stack.append((idx + 1, chosen, minima))
        stack.append(
            (
                idx + 1,
                chosen + [order[idx]],
                np.minimum(minima, ordered[idx]),
            )
        )
    if not found_new:
        return None, incumbent_cost
    return best_rows, best_cost


def improvement_tolerance(reference: float) -> float:
    """Absolute slack below which a cost difference is treated as a tie.

    The single source of truth for the improvement test: the solvers,
    the evaluator's memoized-response path, and the batch-commit
    re-check of :mod:`repro.core.dynamics` all must agree on it, or
    stale commits could disagree with the solver's own ``improved``
    flag.
    """
    if not math.isfinite(reference):
        return 0.0
    return RELATIVE_TOLERANCE * max(1.0, abs(reference))


_tolerance = improvement_tolerance


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def best_response(
    distance_matrix: np.ndarray,
    profile: StrategyProfile,
    peer: int,
    alpha: float,
    method: str = "exact",
    backend: str = "auto",
) -> BestResponseResult:
    """Compute a (best or heuristic) response for ``peer``.

    ``method="exact"`` and ``"brute"`` return a true best response;
    ``"greedy"`` returns a locally optimal one.  ``improved`` is set only
    when the returned strategy strictly beats the current one (beyond
    tolerance), in which case the returned strategy differs from the
    current one; otherwise the current strategy is echoed back
    (tie-breaking favors the status quo, so dynamics cannot churn on
    cost-neutral moves).
    """
    service = compute_service_costs(distance_matrix, profile, peer, backend)
    return best_response_from_service(
        service, profile.strategy(peer), alpha, method
    )


def best_response_from_service(
    service: ServiceCosts,
    current_strategy: Sequence[int],
    alpha: float,
    method: str = "exact",
) -> BestResponseResult:
    """Best (or heuristic) response given a precomputed service matrix.

    This is the solver core of :func:`best_response`; the caching
    :class:`~repro.core.evaluator.GameEvaluator` calls it directly so a
    warm ``W`` matrix is never recomputed.
    """
    if method not in _METHODS:
        raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
    current = sorted(current_strategy)
    current_cost = strategy_cost(service, current, alpha)
    peer = service.peer

    if service.num_candidates == 0:
        return BestResponseResult(
            peer, frozenset(), 0.0, current_cost, False, method
        )

    if method == "brute":
        rows, cost = _brute_force(service, alpha)
    elif method == "greedy":
        rows, cost = _greedy_with_local_search(service, alpha)
    else:
        greedy_rows, greedy_cost = _greedy_with_local_search(service, alpha)
        seed_rows, seed_cost = (
            (greedy_rows, greedy_cost)
            if greedy_cost < current_cost
            else (_rows_of(service, current), current_cost)
        )
        bb_rows, bb_cost = _branch_and_bound(
            service, alpha, seed_cost, seed_rows, first_improvement=False
        )
        rows, cost = (bb_rows, bb_cost) if bb_rows is not None else (seed_rows, seed_cost)

    improved = cost < current_cost - _tolerance(current_cost)
    if not improved:
        return BestResponseResult(
            peer, frozenset(current), current_cost, current_cost, False, method
        )
    strategy = frozenset(service.candidates[r] for r in rows)
    return BestResponseResult(peer, strategy, cost, current_cost, True, method)


def find_improving_deviation(
    distance_matrix: np.ndarray,
    profile: StrategyProfile,
    peer: int,
    alpha: float,
    backend: str = "auto",
) -> Optional[BestResponseResult]:
    """Return *some* strictly improving deviation for ``peer``, or None.

    Exact existence check: the branch and bound runs with the peer's
    current cost as incumbent and stops at the first improvement, which is
    typically far cheaper than a full best response.  ``None`` certifies
    that no improving deviation exists (the peer is playing a best
    response).
    """
    service = compute_service_costs(distance_matrix, profile, peer, backend)
    return improving_deviation_from_service(
        service, profile.strategy(peer), alpha
    )


def improving_deviation_from_service(
    service: ServiceCosts,
    current_strategy: Sequence[int],
    alpha: float,
) -> Optional[BestResponseResult]:
    """Improving-deviation search given a precomputed service matrix."""
    peer = service.peer
    current = sorted(current_strategy)
    current_cost = strategy_cost(service, current, alpha)
    if service.num_candidates == 0:
        return None
    # A cheap greedy pass often finds a deviation without the exact search.
    greedy_rows, greedy_cost = _greedy_with_local_search(service, alpha)
    if greedy_cost < current_cost - _tolerance(current_cost):
        strategy = frozenset(service.candidates[r] for r in greedy_rows)
        return BestResponseResult(
            peer, strategy, greedy_cost, current_cost, True, "greedy"
        )
    rows, cost = _branch_and_bound(
        service, alpha, current_cost, None, first_improvement=True
    )
    if rows is None:
        return None
    strategy = frozenset(service.candidates[r] for r in rows)
    return BestResponseResult(peer, strategy, cost, current_cost, True, "exact")


def _brute_force(
    service: ServiceCosts, alpha: float
) -> Tuple[List[int], float]:
    """Enumerate every subset of candidates (validation baseline)."""
    k = service.num_candidates
    if k > 20:
        raise ValueError(
            f"brute-force best response over {k} candidates is infeasible; "
            f"use method='exact'"
        )
    best_rows: List[int] = []
    best_cost = math.inf
    for size in range(0, k + 1):
        for combo in itertools.combinations(range(k), size):
            rows = list(combo)
            minima = _minima_of(service.weights, rows, service.peer)
            cost = alpha * len(rows) + float(minima.sum())
            if cost < best_cost:
                best_cost = cost
                best_rows = rows
    return best_rows, best_cost


def _rows_of(service: ServiceCosts, strategy: Sequence[int]) -> List[int]:
    index_of = {c: idx for idx, c in enumerate(service.candidates)}
    return [index_of[s] for s in strategy]
