"""Core of the reproduction: the selfish topology-formation game.

This subpackage implements Section 2 of the paper (model and cost
functions) plus the strategic machinery the results are built on:

* :class:`~repro.core.profile.StrategyProfile` — immutable link choices.
* :class:`~repro.core.game.TopologyGame` — metric + alpha; costs, overlays.
* :mod:`~repro.core.best_response` — exact (branch-and-bound) and heuristic
  responders exploiting the facility-location structure of the game.
* :mod:`~repro.core.equilibrium` — certified Nash verification and
  exhaustive equilibrium search for tiny instances.
* :mod:`~repro.core.dynamics` — best-response dynamics with schedulers and
  sound cycle detection (the paper's Section 5 phenomenon).
* :mod:`~repro.core.social_optimum` / :mod:`~repro.core.anarchy` — optimum
  bracketing and certified Price-of-Anarchy estimates (Section 4).
"""

from repro.core.anarchy import (
    PoAEstimate,
    estimate_price_of_anarchy,
    nash_equilibrium_cost_upper_bound,
    price_of_anarchy_upper_bound,
    sample_equilibria,
)
from repro.core.best_response import (
    BestResponseResult,
    ServiceCosts,
    best_response,
    compute_service_costs,
    find_improving_deviation,
    peer_cost,
    strategy_cost,
)
from repro.core.better_response import (
    BetterResponseDynamics,
    BetterResponseResult,
    find_improving_flip,
    find_improving_flip_naive,
    flip_candidates,
    is_flip_stable,
)
from repro.core.evaluator import EvaluatorStats, GameEvaluator
from repro.core.costs import (
    CostBreakdown,
    individual_costs,
    social_cost,
    stretch_matrix,
)
from repro.core.dynamics import (
    BatchedScheduler,
    BestResponseDynamics,
    CycleInfo,
    DynamicsResult,
    FixedOrderScheduler,
    MoveRecord,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    scheduler_batches,
)
from repro.core.equilibrium import (
    NashCertificate,
    best_response_closure,
    enumerate_profiles,
    find_equilibria_exhaustive,
    verify_nash,
)
from repro.core.exhaustive import (
    ExhaustiveResult,
    decode_profile,
    encode_profile,
    encoded_best_response_dynamics,
    exhaustive_equilibria,
    profile_costs_batch,
)
from repro.core.game import TopologyGame
from repro.core.response_graph import (
    ResponseGraphAnalysis,
    analyze_response_graph,
    best_response_moves,
)
from repro.core.potential import (
    ImprovementCycle,
    WeakAcyclicityReport,
    find_improvement_cycle,
    weak_acyclicity,
)
from repro.core.profile import StrategyProfile
from repro.core.social_optimum import (
    OptimumEstimate,
    candidate_topologies,
    local_search_improve,
    optimum_exact,
    optimum_upper_bound,
    social_cost_lower_bound,
)
from repro.core.backends import (
    ProcessBackend,
    SerialBackend,
    SolverBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.core.service_store import (
    ArrayStore,
    ServiceStore,
    SharedMemoryStore,
    SpillStore,
    make_store,
)
from repro.core.sharded import (
    ShardedDistances,
    ShardedEvaluator,
    ShardedStore,
    ShardPlan,
)
from repro.core.topology import build_overlay, overlay_from_matrix

__all__ = [
    "StrategyProfile",
    "TopologyGame",
    "SolverBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "resolve_backend",
    "ServiceStore",
    "ArrayStore",
    "SharedMemoryStore",
    "SpillStore",
    "make_store",
    "CostBreakdown",
    "stretch_matrix",
    "individual_costs",
    "social_cost",
    "build_overlay",
    "overlay_from_matrix",
    "BestResponseResult",
    "ServiceCosts",
    "compute_service_costs",
    "strategy_cost",
    "best_response",
    "find_improving_deviation",
    "NashCertificate",
    "verify_nash",
    "enumerate_profiles",
    "find_equilibria_exhaustive",
    "best_response_closure",
    "BestResponseDynamics",
    "DynamicsResult",
    "CycleInfo",
    "MoveRecord",
    "Scheduler",
    "RoundRobinScheduler",
    "FixedOrderScheduler",
    "RandomScheduler",
    "BatchedScheduler",
    "scheduler_batches",
    "OptimumEstimate",
    "social_cost_lower_bound",
    "candidate_topologies",
    "optimum_upper_bound",
    "optimum_exact",
    "local_search_improve",
    "PoAEstimate",
    "estimate_price_of_anarchy",
    "sample_equilibria",
    "nash_equilibrium_cost_upper_bound",
    "price_of_anarchy_upper_bound",
    "ExhaustiveResult",
    "exhaustive_equilibria",
    "encode_profile",
    "decode_profile",
    "profile_costs_batch",
    "encoded_best_response_dynamics",
    "ResponseGraphAnalysis",
    "analyze_response_graph",
    "best_response_moves",
    "ImprovementCycle",
    "find_improvement_cycle",
    "WeakAcyclicityReport",
    "weak_acyclicity",
    "BetterResponseDynamics",
    "BetterResponseResult",
    "flip_candidates",
    "find_improving_flip",
    "find_improving_flip_naive",
    "is_flip_stable",
    "GameEvaluator",
    "EvaluatorStats",
    "ShardPlan",
    "ShardedDistances",
    "ShardedStore",
    "ShardedEvaluator",
    "peer_cost",
]
