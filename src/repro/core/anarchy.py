"""Price of Anarchy estimation.

``PoA = C(worst Nash equilibrium) / C(OPT)``.  Both numerator and
denominator are intractable exactly, so the estimator reports a *certified
bracket*:

* ``lower``: (cost of the worst equilibrium we exhibited) / (an upper bound
  on OPT achieved by a concrete topology) — every factor of this ratio is a
  witnessed object, so the true PoA is at least this value.
* ``upper``: the paper's structural bound evaluated exactly — in any Nash
  equilibrium no stretch exceeds ``alpha + 1`` and there are at most
  ``n(n-1)`` links, so ``C(NE) <= alpha n(n-1) + (alpha+1) n(n-1)``; divided
  by the OPT lower bound ``alpha n + n(n-1)`` this is the explicit
  ``O(min(alpha, n))`` bound of Theorem 4.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.dynamics import BestResponseDynamics, RandomScheduler
from repro.core.game import TopologyGame
from repro.core.profile import StrategyProfile
from repro.core.social_optimum import (
    OptimumEstimate,
    optimum_upper_bound,
    social_cost_lower_bound,
)

__all__ = [
    "nash_equilibrium_cost_upper_bound",
    "price_of_anarchy_upper_bound",
    "PoAEstimate",
    "estimate_price_of_anarchy",
    "sample_equilibria",
]


def nash_equilibrium_cost_upper_bound(alpha: float, n: int) -> float:
    """Largest social cost any Nash equilibrium can have (Theorem 4.1).

    In a Nash equilibrium every stretch is at most ``alpha + 1`` (otherwise
    a direct link, costing ``alpha``, would pay for itself) and there are
    at most ``n(n-1)`` directed links.
    """
    if n <= 1:
        return 0.0
    pairs = n * (n - 1)
    return alpha * pairs + (alpha + 1.0) * pairs


def price_of_anarchy_upper_bound(alpha: float, n: int) -> float:
    """Theorem 4.1's ``O(min(alpha, n))`` bound, evaluated exactly."""
    if n <= 1:
        return 1.0
    return nash_equilibrium_cost_upper_bound(alpha, n) / social_cost_lower_bound(
        alpha, n
    )


@dataclass(frozen=True)
class PoAEstimate:
    """A certified bracket on the Price of Anarchy of one game instance.

    Attributes
    ----------
    lower:
        Witnessed: worst exhibited equilibrium cost over an achieved OPT
        upper bound.
    upper:
        Structural Theorem 4.1 bound for this ``(alpha, n)``.
    worst_equilibrium_cost / worst_equilibrium:
        The numerator's witness.
    optimum:
        The denominator's bracket.
    num_equilibria:
        How many (distinct) equilibria the numerator was maximized over.
    """

    lower: float
    upper: float
    worst_equilibrium_cost: float
    worst_equilibrium: Optional[StrategyProfile]
    optimum: OptimumEstimate
    num_equilibria: int

    def __str__(self) -> str:
        return (
            f"PoA in [{self.lower:.4g}, {self.upper:.4g}] "
            f"(worst of {self.num_equilibria} equilibria: "
            f"{self.worst_equilibrium_cost:.6g}; "
            f"OPT <= {self.optimum.upper:.6g})"
        )


def sample_equilibria(
    game: TopologyGame,
    num_samples: int = 5,
    seed: Optional[int] = None,
    method: str = "exact",
    max_rounds: int = 200,
    initial_profiles: Optional[Sequence[StrategyProfile]] = None,
) -> List[StrategyProfile]:
    """Sample equilibria by best-response dynamics from varied starts.

    Different starting profiles and activation orders reach different
    equilibria, which is how the worst-equilibrium numerator of the PoA is
    explored in practice.  Runs that cycle or hit the round limit
    contribute nothing.  With ``method="exact"`` every returned profile is
    a certified pure Nash equilibrium.
    """
    starts: List[StrategyProfile] = list(initial_profiles or [])
    while len(starts) < num_samples:
        index = len(starts)
        if index == 0:
            starts.append(game.empty_profile())
        elif index == 1 and game.n <= 64:
            starts.append(game.complete_profile())
        else:
            starts.append(
                game.random_profile(
                    min(0.5, 4.0 / max(1, game.n)),
                    seed=None if seed is None else seed + index,
                )
            )
    equilibria: List[StrategyProfile] = []
    seen = set()
    for index, start in enumerate(starts[:num_samples]):
        scheduler = RandomScheduler(
            None if seed is None else seed * 7919 + index
        )
        dynamics = BestResponseDynamics(
            game, method=method, scheduler=scheduler, record_moves=False
        )
        result = dynamics.run(initial=start, max_rounds=max_rounds)
        if result.converged and result.profile.key() not in seen:
            seen.add(result.profile.key())
            equilibria.append(result.profile)
    return equilibria


def estimate_price_of_anarchy(
    game: TopologyGame,
    equilibria: Optional[Iterable[StrategyProfile]] = None,
    num_samples: int = 5,
    seed: Optional[int] = None,
    method: str = "exact",
) -> PoAEstimate:
    """Bracket the Price of Anarchy of ``game``.

    When ``equilibria`` is not supplied they are sampled via
    :func:`sample_equilibria`.  Supplying known worst-case equilibria (for
    example the paper's Figure 1 construction) tightens the lower end.
    """
    if equilibria is None:
        equilibria = sample_equilibria(
            game, num_samples=num_samples, seed=seed, method=method
        )
    equilibria = list(equilibria)
    optimum = optimum_upper_bound(game)
    worst_cost = -math.inf
    worst_profile: Optional[StrategyProfile] = None
    for profile in equilibria:
        cost = game.social_cost(profile).total
        if cost > worst_cost:
            worst_cost, worst_profile = cost, profile
    if worst_profile is None:
        worst_cost = math.nan
        lower = math.nan
    else:
        lower = worst_cost / optimum.upper
    return PoAEstimate(
        lower=lower,
        upper=price_of_anarchy_upper_bound(game.alpha, game.n),
        worst_equilibrium_cost=worst_cost,
        worst_equilibrium=worst_profile,
        optimum=optimum,
        num_equilibria=len(equilibria),
    )
