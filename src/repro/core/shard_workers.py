"""Shard *worker processes*: distance row blocks served across processes.

:class:`~repro.core.sharded.ShardedEvaluator` (PR 4) bounds one
process's resident overlay-distance memory, but all ``k`` row-block
shards still live in a single address space.  This module promotes each
shard to a **long-lived worker process** that owns its distance slice —
the next rung toward populations whose overlay state cannot fit any one
process:

* Each worker holds its own copy of the bound profile's overlay and
  builds/repairs its ``[lo, hi)`` distance row block with the *same*
  updater the in-process :class:`~repro.core.sharded.ShardedDistances`
  uses — full builds are per-source Dijkstra runs, and dirty rows are
  patched in place by the incremental dynamic-SSSP repairer
  (:mod:`repro.graphs.dynamic_sssp`) unless the pool was built with
  ``dynamic_repair=False``.  Either path computes each distance as the
  same folded float64 sum, so the bytes are identical wherever (and
  however) they are computed.
* The cross-shard interface stays narrow (the communication-efficiency
  discipline of distributed self-stabilizing protocols): shards exchange
  only the ``distance_rows`` they are asked for and O(n/k) stretch
  *reductions* — never whole matrices.  A single-peer rebind ships just
  ``(peer, new_targets)``; every worker re-derives the affected rows
  from its own overlay with the same reverse-reachability BFS the
  coordinator runs, so no row set crosses the wire either.
* The transport is abstracted behind :class:`ShardTransport` — the
  default :class:`PipeTransport` forks one worker per shard over a
  ``multiprocessing`` pipe, and
  :class:`~repro.core.transport.SocketTransport` serves the identical
  protocol from a standalone :mod:`repro.shard_server` over TCP or
  Unix-domain sockets (``placement="socket"``), so shards can leave the
  coordinator's host entirely.
* Each worker also owns its *own* service-matrix store and solver
  backend: the ``solve`` request routes best-response solves to the
  shard that owns the peer, built from the worker's overlay with the
  same stripped-Dijkstra + normalization pipeline the coordinator uses
  — the bytes, and therefore the responses, are identical.
* Broadcast fan-out is **pipelined**: the pool sends a broadcast
  (``reset``/``rebind``/``sums``/``stats``) to all ``k`` transports
  before collecting any reply, so a round trip costs one worker's
  latency instead of ``k`` of them (``pool.pipelined = False`` restores
  the sequential order for measurement; replies are collected in shard
  order either way, so results cannot depend on the mode).

Message protocol (one request/reply pair per call, strictly ordered per
worker):

=============  =======================================  ==============
request        payload                                  reply payload
=============  =======================================  ==============
``"reset"``    strategies (tuple of target tuples)      ``None``
``"rebind"``   ``(peer, targets)``                      ``None``
``"rows"``     global row ids owned by this shard       ``(m, n)`` array
``"sums"``     —                                        ``(row sums, total)``
``"solve"``    ``((peer, strategy), ...), alpha,        response tuple
               method``
``"stats"``    —                                        counter dict
``"ping"``     optional ``delay_s`` latency probe       ``"pong"``
``"stop"``     —                                        ``None`` (exits)
=============  =======================================  ==============

Replies are ``("ok", payload)`` or ``("error", traceback_text)``; the
coordinator re-raises the latter as :class:`ShardWorkerError`.

Lifecycle: workers are daemonic and the pool registers a
``weakref.finalize`` safety net (mirroring the backend ``_shutdown``
pattern in :mod:`repro.core.backends`), so an abandoned pool — a test
failure mid-run, a CLI Ctrl-C — still tears its processes down at
garbage collection or interpreter exit; :meth:`ShardWorkerPool.close`
is the deterministic, idempotent path.
"""

from __future__ import annotations

import time
import traceback
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.backends import SolverBackend, resolve_backend
from repro.core.best_response import (
    BestResponseResult,
    ServiceCosts,
    best_response_from_service,
    improvement_tolerance,
    service_cost_rows,
    service_costs_from_overlay,
    strategy_cost,
)
from repro.core.cost_model import CostModel, model_from_spec
from repro.core.costs import stretch_from_distance_rows
from repro.core.evaluator import GameEvaluator
from repro.core.profile import StrategyProfile
from repro.core.service_store import make_store
from repro.core.sharded import ShardPlan
from repro.core.topology import overlay_from_matrix
from repro.graphs.digraph import WeightedDigraph
from repro.graphs.dynamic_sssp import RowRepairer
from repro.graphs.shortest_paths import multi_source_distances

#: The coordinator's reverse-reachability BFS, shared (not duplicated):
#: worker dirty sets agree with the coordinator's *because this is the
#: same function* — any future change applies to both sides at once.
_reverse_reachable = GameEvaluator._reverse_reachable

__all__ = [
    "ShardWorkerError",
    "ShardTransport",
    "PipeTransport",
    "RecoveryPolicy",
    "ShardWorkerPool",
    "ShardSolverBackend",
    "PLACEMENT_SPECS",
]

#: ``placement=`` spec strings accepted by the sharded evaluator (and
#: therefore by the ``--shard-placement`` CLI flag).  ``"socket"``
#: places each shard behind a :mod:`repro.shard_server` connection (an
#: auto-spawned same-host server by default, explicit ``shard_hosts``
#: for multi-host fabrics).
PLACEMENT_SPECS = ("local", "process", "socket")


class ShardWorkerError(RuntimeError):
    """A shard worker failed while serving a request (traceback inside)."""


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _WorkerState:
    """One shard's state machine, running inside the worker process.

    Mirrors the in-process :class:`~repro.core.sharded.ShardedDistances`
    semantics for a single always-resident block: built lazily by one
    multi-source Dijkstra over the shard's own sources, repaired
    row-incrementally after rebinds, dirt ignored while the block is
    unbuilt (it will be built in full anyway).
    """

    def __init__(
        self,
        lo: int,
        hi: int,
        dmat: np.ndarray,
        backend: str,
        dynamic: bool = True,
        solver: str = "serial",
        solver_workers: int = 1,
    ) -> None:
        self.lo = lo
        self.hi = hi
        self.dmat = dmat
        self.n = int(dmat.shape[0])
        self.backend = backend
        self.overlay: Optional[WeightedDigraph] = None
        self.block: Optional[np.ndarray] = None
        self.dirty: set = set()
        self.sums: Optional[Tuple[np.ndarray, float]] = None
        self.repairer: Optional[RowRepairer] = (
            RowRepairer(backend) if dynamic else None
        )
        self.cursor = 0
        self.block_builds = 0
        self.rows_recomputed = 0
        self.vertices_repaired = 0
        self.full_fallbacks = 0
        self.resident_peak_bytes = 0
        # Shard-side solver pool: this worker's own service-matrix store
        # plus an in-process backend for the peers it owns (built lazily
        # — workers that never see a "solve" pay nothing).
        self.solver_spec = solver
        self.solver_workers = solver_workers
        #: Cost model rebuilt from the spec riding the last ``reset``
        #: (None for the paper's default).  Shard-side solves price with
        #: its alpha; the per-peer term never enters a solve (it is
        #: constant w.r.t. each peer's own strategy by contract).
        self.model: Optional[CostModel] = None
        self._solver: Optional[SolverBackend] = None
        self._service_store = None
        self._services: Dict[int, "_WorkerService"] = {}
        self.service_builds = 0
        self.service_rows_recomputed = 0
        self.response_solves = 0
        self.response_memo_hits = 0

    # -- profile sync ---------------------------------------------------
    def reset(
        self, strategies: Sequence[Tuple[int, ...]], model_spec=None
    ) -> None:
        self.model = None if model_spec is None else model_from_spec(model_spec)
        profile = StrategyProfile([frozenset(s) for s in strategies])
        self.overlay = overlay_from_matrix(self.dmat, profile)
        self.block = None
        self.dirty = set()
        self.sums = None
        if self.repairer is not None:
            self.repairer.reset()
        self.cursor = 0
        self._services.clear()
        if self._service_store is not None:
            self._service_store.clear()

    def rebind(self, peer: int, targets: Tuple[int, ...]) -> None:
        overlay = self._require_overlay()
        # Same invariant as the coordinator's incremental rebind: edges
        # *into* peer are identical before and after the splice, so the
        # reverse reachability computed on the old overlay is valid for
        # both — and identical to the coordinator's affected set (the
        # maintained reverse index answers the same query as the BFS,
        # just in O(affected edges)).
        new_out = {j: float(self.dmat[peer, j]) for j in targets}
        if self.repairer is not None:
            affected = self.repairer.apply_rebind(overlay, peer, new_out)
        else:
            affected = _reverse_reachable(overlay, peer)
            overlay.remove_out_edges(peer)
            for j, w in new_out.items():
                overlay.add_edge(peer, j, w)
        mine = {row for row in affected if self.lo <= row < self.hi}
        if mine:
            self.sums = None
            if self.block is not None:
                self.dirty |= mine
        # Service invalidation mirrors the coordinator's _rebind_single
        # exactly: the rebound peer's own matrix stays fully valid
        # (H_peer excludes its out-edges), every other cached matrix
        # dirties the affected candidate rows.
        for i, service in self._services.items():
            if i == peer:
                continue
            service.dirty |= affected - {i}

    # -- queries --------------------------------------------------------
    def _require_overlay(self) -> WeightedDigraph:
        if self.overlay is None:
            raise RuntimeError("no profile bound; send a 'reset' first")
        return self.overlay

    def clean_block(self) -> np.ndarray:
        overlay = self._require_overlay()
        if self.block is None:
            self.block = multi_source_distances(
                overlay, list(range(self.lo, self.hi)), backend=self.backend
            )
            self.dirty = set()
            if self.repairer is not None:
                self.cursor = self.repairer.head
            self.block_builds += 1
            self.resident_peak_bytes = max(
                self.resident_peak_bytes, self.block.nbytes
            )
        elif self.dirty:
            rows = sorted(self.dirty)
            if self.repairer is not None:
                repaired, fallbacks = self.repairer.repair_block(
                    self.block,
                    [row - self.lo for row in rows],
                    rows,
                    overlay,
                    self.cursor,
                )
                self.cursor = self.repairer.head
                self.vertices_repaired += repaired
                self.full_fallbacks += fallbacks
            else:
                fresh = multi_source_distances(
                    overlay, rows, backend=self.backend
                )
                self.block[[row - self.lo for row in rows]] = fresh
            self.rows_recomputed += len(rows)
            self.dirty = set()
        return self.block

    def rows(self, wanted: Sequence[int]) -> np.ndarray:
        block = self.clean_block()
        return block[[row - self.lo for row in wanted]].copy()

    def stretch_sums(self) -> Tuple[np.ndarray, float]:
        # Bitwise identical to ShardedEvaluator._shard_stretch_sums:
        # same stretch rows, same reduction order, same bytes.
        if self.sums is None:
            block = self.clean_block()
            stretch = stretch_from_distance_rows(
                self.dmat[self.lo : self.hi], block, range(self.lo, self.hi)
            )
            self.sums = (stretch.sum(axis=1), float(stretch.sum()))
        return self.sums

    # -- shard-side solver pool -----------------------------------------
    def _solver_backend(self) -> SolverBackend:
        if self._solver is None:
            solver = resolve_backend(self.solver_spec, self.solver_workers)
            if solver.distributed or solver.wants_tasks:
                raise ValueError(
                    f"shard-side solver must be 'serial' or 'thread', "
                    f"got {self.solver_spec!r}"
                )
            self._solver = solver
        return self._solver

    def _store(self):
        if self._service_store is None:
            self._service_store = make_store("memory")
        return self._service_store

    def _service(self, peer: int) -> Tuple[ServiceCosts, "_WorkerService"]:
        """The clean service matrix of ``peer`` (built/repaired on demand).

        Built from this worker's overlay with the same stripped-overlay
        Dijkstra + :func:`normalize_service_rows` pipeline as every
        coordinator build path, so the bytes — and any solve over them —
        are identical to a local computation.
        """
        overlay = self._require_overlay()
        service = self._services.get(peer)
        if service is None:
            candidates = tuple(j for j in range(self.n) if j != peer)
            if not candidates:
                weights = service_costs_from_overlay(
                    self.dmat, overlay, peer, self.backend
                ).weights
            else:
                stripped = overlay.copy_without_out_edges(peer)
                weights = service_cost_rows(
                    self.dmat, stripped, peer, candidates, self.backend
                )
            self._store().put(peer, weights)
            service = _WorkerService(candidates=candidates)
            self._services[peer] = service
            self.service_builds += 1
        elif service.dirty:
            self._repair_service(peer, service)
        return (
            ServiceCosts(peer, service.candidates, self._store().get(peer)),
            service,
        )

    def _repair_service(self, peer: int, service: "_WorkerService") -> None:
        row_of = {c: k for k, c in enumerate(service.candidates)}
        sources = sorted(c for c in service.dirty if c in row_of)
        service.dirty = set()
        if not sources:
            return
        overlay = self._require_overlay()
        stripped = overlay.copy_without_out_edges(peer)
        fresh = service_cost_rows(
            self.dmat, stripped, peer, sources, self.backend
        )
        rows = [row_of[c] for c in sources]
        store = self._store()
        old = store.get(peer)[rows]
        store.write_rows(peer, rows, fresh)
        self.service_rows_recomputed += len(rows)
        if not np.array_equal(old, fresh):
            # The memo's sound-reuse condition is "matrix bit-identical
            # to memo time"; a repair that changed bytes voids it.
            service.memo = None

    def solve(
        self, items: Sequence[Tuple[int, Tuple[int, ...]]], alpha, method: str
    ) -> Tuple:
        """Best responses for owned peers, solved against local matrices.

        Memoized like the coordinator's unchanged-matrix reuse path: a
        stored response survives exactly while the peer's matrix stays
        bit-identical, and is re-scored against the peer's *current*
        strategy with the shared tolerance/tie-breaking — so a memo hit
        returns the same result a fresh solve would.
        """
        # Price with the reset-time cost model when one rode the wire;
        # resolve_cost_model pins model.alpha == game.alpha, so this is
        # the same scalar the task carries — made explicit here so the
        # worker's pricing source is the model, not the task metadata.
        alpha = float(alpha) if self.model is None else self.model.alpha
        peers = [int(peer) for peer, _ in items]
        strategies = {int(peer): tuple(s) for peer, s in items}
        services = {peer: self._service(peer) for peer in peers}
        results: Dict[int, BestResponseResult] = {}
        to_solve: List[int] = []
        for peer in peers:
            view, service = services[peer]
            memo = service.memo
            if (
                memo is not None
                and memo[0] == method
                and service.candidates
            ):
                current = sorted(strategies[peer])
                current_cost = strategy_cost(view, current, alpha)
                opt_cost = memo[2]
                self.response_memo_hits += 1
                if opt_cost < current_cost - improvement_tolerance(
                    current_cost
                ):
                    results[peer] = BestResponseResult(
                        peer, memo[1], opt_cost, current_cost, True, method
                    )
                else:
                    results[peer] = BestResponseResult(
                        peer,
                        frozenset(current),
                        current_cost,
                        current_cost,
                        False,
                        method,
                    )
            else:
                to_solve.append(peer)

        def solve_local(peer: int) -> BestResponseResult:
            return best_response_from_service(
                services[peer][0], strategies[peer], alpha, method
            )

        solved = self._solver_backend().run_solves(to_solve, solve_local)
        self.response_solves += len(to_solve)
        for peer, response in zip(to_solve, solved):
            services[peer][1].memo = (method, response.strategy, response.cost)
            results[peer] = response
        return tuple(results[peer] for peer in peers)

    def stats(self) -> Dict[str, int]:
        return {
            "shard_rows": self.hi - self.lo,
            "block_builds": self.block_builds,
            "rows_recomputed": self.rows_recomputed,
            "vertices_repaired": self.vertices_repaired,
            "full_fallbacks": self.full_fallbacks,
            "resident_bytes": 0 if self.block is None else self.block.nbytes,
            "resident_peak_bytes": self.resident_peak_bytes,
            "service_builds": self.service_builds,
            "service_rows_recomputed": self.service_rows_recomputed,
            "service_resident_bytes": (
                0
                if self._service_store is None
                else self._service_store.resident_bytes()
            ),
            "response_solves": self.response_solves,
            "response_memo_hits": self.response_memo_hits,
        }


class _WorkerService:
    """Cache bookkeeping for one owned peer's service matrix."""

    __slots__ = ("candidates", "dirty", "memo")

    def __init__(self, candidates: Tuple[int, ...]):
        self.candidates = candidates
        self.dirty: set = set()
        #: ``(method, strategy, cost)`` of the last solve, valid while
        #: the matrix stays bit-identical (cleared on changed repairs).
        self.memo: Optional[Tuple[str, frozenset, float]] = None


def serve_request(state: _WorkerState, message: Tuple) -> Tuple[Tuple, bool]:
    """Serve one protocol request against ``state``.

    Returns ``(reply, stop)`` where ``reply`` is the ``("ok", payload)``
    / ``("error", traceback)`` pair to put on the wire and ``stop``
    signals an orderly shutdown.  Shared verbatim by the pipe worker
    loop and the socket server (:mod:`repro.shard_server`), so the two
    placements cannot drift apart protocol-wise.
    """
    kind = message[0]
    try:
        if kind == "stop":
            return ("ok", None), True
        if kind == "reset":
            # 2-tuple (legacy) or 3-tuple with a cost-model spec.
            spec = message[2] if len(message) > 2 else None
            reply = state.reset(message[1], spec)
        elif kind == "rebind":
            reply = state.rebind(message[1], message[2])
        elif kind == "rows":
            reply = state.rows(message[1])
        elif kind == "sums":
            reply = state.stretch_sums()
        elif kind == "solve":
            reply = state.solve(message[1], message[2], message[3])
        elif kind == "stats":
            reply = state.stats()
        elif kind == "ping":
            # Optional latency probe: ``("ping", delay_s)`` holds the
            # reply for ``delay_s`` seconds worker-side.  Stands in for
            # cross-host wire latency in fan-out benchmarks (each shard
            # delays concurrently, so pipelined broadcasts overlap it)
            # and for stall-injection in liveness tests.
            if len(message) > 1 and message[1]:
                time.sleep(float(message[1]))
            reply = "pong"
        else:
            raise ValueError(f"unknown shard-worker request {kind!r}")
        return ("ok", reply), False
    except Exception:  # noqa: BLE001 - forwarded to the coordinator
        return ("error", traceback.format_exc()), False


def _worker_main(
    conn,
    lo: int,
    hi: int,
    dmat: np.ndarray,
    backend: str,
    dynamic: bool = True,
) -> None:
    """Worker process entry point: serve requests until ``stop``/EOF."""
    state = _WorkerState(lo, hi, dmat, backend, dynamic)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # coordinator went away
            return
        reply, stop = serve_request(state, message)
        conn.send(reply)
        if stop:
            return


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
class ShardTransport:
    """One ordered request/reply channel to a shard worker.

    The seam that keeps the *placement* of a shard separate from how
    messages reach it: :class:`PipeTransport` is the in-host default and
    :class:`~repro.core.transport.SocketTransport` serves the same
    protocol from a standalone server, without touching
    :class:`ShardWorkerPool` or the evaluator.

    ``request`` is split into :meth:`send` / :meth:`recv` halves so the
    pool can *pipeline* a broadcast — send to every worker, then collect
    every reply — instead of serializing ``k`` full round trips.
    """

    def send(self, message: Tuple) -> None:
        """Put one request on the wire without waiting for its reply."""
        raise NotImplementedError

    def recv(self):
        """Block for the next pending reply's payload (or raise)."""
        raise NotImplementedError

    def request(self, message: Tuple):
        """Send ``message``, block for the reply payload (or raise)."""
        self.send(message)
        return self.recv()

    def close(self) -> None:
        """Tear the channel (and any owned worker) down; idempotent."""

    @property
    def alive(self) -> bool:
        """Whether the far side is still expected to answer."""
        return False


class PipeTransport(ShardTransport):
    """A forked worker process behind a ``multiprocessing`` pipe.

    Uses the ``fork`` start method where available so the worker
    inherits the coordinator's distance matrix without pickling it; the
    spawn fallback ships ``dmat`` once at startup.  Workers are daemonic
    — the OS reaps them if the coordinator dies without closing.
    """

    def __init__(
        self,
        lo: int,
        hi: int,
        dmat: np.ndarray,
        backend: str,
        dynamic: bool = True,
    ):
        import multiprocessing

        context = multiprocessing
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        parent, child = context.Pipe()
        self._conn = parent
        self._process = context.Process(
            target=_worker_main,
            args=(child, lo, hi, dmat, backend, dynamic),
            daemon=True,
            name=f"repro-shard-{lo}-{hi}",
        )
        self._process.start()
        child.close()  # the worker holds its own copy of the fd

    @property
    def name(self) -> str:
        return self._process.name

    def send(self, message: Tuple) -> None:
        # A worker found dead *before* anything goes on the wire never
        # saw this request: that is the recoverable case (respawn and
        # retry cannot double-apply anything), and the message contract
        # keeps it distinguishable from a mid-request death.
        try:
            alive = self._process.is_alive()
        except ValueError:
            raise ShardWorkerError(
                f"shard worker {self._process.name} transport is closed"
            ) from None
        if not alive:
            raise ShardWorkerError(
                f"shard worker {self._process.name} died between requests "
                f"(exit code {self._process.exitcode})"
            )
        try:
            self._conn.send(message)
        except (EOFError, OSError, BrokenPipeError) as error:
            raise ShardWorkerError(
                f"shard worker {self._process.name} died mid-request "
                f"({type(error).__name__})"
            ) from error

    def recv(self):
        try:
            kind, payload = self._conn.recv()
        except (EOFError, OSError) as error:
            raise ShardWorkerError(
                f"shard worker {self._process.name} died mid-request "
                f"({type(error).__name__})"
            ) from error
        if kind == "error":
            raise ShardWorkerError(
                f"shard worker {self._process.name} failed:\n{payload}"
            )
        return payload

    @property
    def alive(self) -> bool:
        try:
            return self._process.is_alive()
        except ValueError:  # handle released by close()
            return False

    def kill(self) -> None:
        """SIGKILL the worker (chaos drills); the pipe is left to close().

        The connection stays open so an in-flight ``recv`` observes the
        genuine EOF (a *mid-request* death), while the next ``send``
        finds the process dead first (*between requests*).
        """
        if self._process.is_alive():
            self._process.kill()
        self._process.join(timeout=5)

    def close(self) -> None:
        _stop_pipe_worker(self._conn, self._process)


def _stop_pipe_worker(conn, process) -> None:
    """Stop one pipe worker; safe to call repeatedly or post-mortem."""
    try:
        alive = process.is_alive()
    except ValueError:  # process handle already released: repeat close
        return
    if alive:
        try:
            conn.send(("stop",))
            conn.recv()
        except (EOFError, OSError):  # already gone / pipe torn
            pass
        process.join(timeout=5)
        if process.is_alive():  # pragma: no cover - stuck worker
            process.terminate()
            process.join(timeout=5)
    conn.close()
    try:
        # Release the dead process's OS handles (sentinel pipe) now
        # instead of at GC time — the chaos drills count leaked fds.
        process.close()
    except ValueError:  # pragma: no cover - stuck worker still alive
        pass


class RecoveryPolicy:
    """How a pool responds to a dead shard worker.

    ``max_restarts_per_shard`` bounds how many times any one shard may
    be respawned over the pool's lifetime — recovery is for transient
    faults, not for masking a worker that is crash-looping on its own
    input.  Respawn rebuilds the worker from the pool's mirrored profile
    history (one ``reset`` plus the rebinds since), so the replacement
    answers every query with the same bytes the dead worker would have.
    """

    __slots__ = ("max_restarts_per_shard",)

    def __init__(self, max_restarts_per_shard: int = 3) -> None:
        if max_restarts_per_shard < 1:
            raise ValueError(
                f"max_restarts_per_shard must be >= 1, "
                f"got {max_restarts_per_shard}"
            )
        self.max_restarts_per_shard = int(max_restarts_per_shard)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RecoveryPolicy(max_restarts_per_shard={self.max_restarts_per_shard})"


def _coerce_recovery(recovery) -> Optional[RecoveryPolicy]:
    if recovery is None or recovery is False:
        return None
    if recovery is True:
        return RecoveryPolicy()
    if isinstance(recovery, RecoveryPolicy):
        return recovery
    if isinstance(recovery, int):
        return RecoveryPolicy(max_restarts_per_shard=recovery)
    raise TypeError(
        f"recovery must be None, bool, int or RecoveryPolicy, "
        f"got {type(recovery).__name__}"
    )


class ShardWorkerPool:
    """One long-lived worker per shard, serving the distance row blocks.

    The pool is the coordinator-side face of process placement: it
    routes :meth:`rows` requests to the owning shards (assembling the
    reply in ``peers`` order, exactly like
    :meth:`~repro.core.sharded.ShardedDistances.rows`), broadcasts
    profile syncs, and collects per-worker stats.  All methods are
    synchronous and ordered per worker, so a ``rows`` request can never
    overtake the ``rebind`` that dirtied it.

    With a :class:`RecoveryPolicy` (``recovery=``), a worker that dies
    is respawned through the same transport factory and rebuilt from
    the pool's mirrored profile history; the failed request is then
    retried once on the replacement.  Every protocol mutation is
    idempotent (``reset`` replaces the overlay, ``rebind`` splices to an
    absolute target set) and every query is pure, so the retry cannot
    double-apply state regardless of where the original died.  Each
    recovery appends to :attr:`recovery_events` (shard, reason, wall
    seconds) — the raw samples behind the e20 recovery distributions.
    Without a policy (the default) failures propagate exactly as before.
    """

    def __init__(
        self,
        plan: ShardPlan,
        dmat: np.ndarray,
        backend: str = "auto",
        transport_factory=PipeTransport,
        dynamic_repair: bool = True,
        pipelined: bool = True,
        recovery=None,
    ) -> None:
        self._plan = plan
        self._n = plan.n
        #: Public toggle: pipelined fan-out (send to all k workers, then
        #: collect all k replies) vs strict request-by-request rounds.
        #: Replies are gathered in shard order either way, so every
        #: result — and every trajectory — is identical in both modes;
        #: the sequential mode exists as the e18 latency baseline.
        self.pipelined = pipelined
        self._factory = transport_factory
        self._dmat = dmat
        self._backend = backend
        self._dynamic = dynamic_repair
        self._recovery = _coerce_recovery(recovery)
        self._respawns_left = [
            0 if self._recovery is None
            else self._recovery.max_restarts_per_shard
            for _ in range(plan.k)
        ]
        #: Mirror of the profile history since the last reset, enough to
        #: rebuild any worker from scratch: the reset strategies plus
        #: every rebind since, in order.  Updated *before* the broadcast
        #: so an in-flight mutation is already part of the replay.
        #: ``(strategies, model_spec)`` of the last reset, mirrored for
        #: respawn replay.
        self._last_reset: Optional[Tuple[Tuple, Optional[Tuple]]] = None
        self._rebinds: List[Tuple[int, Tuple[int, ...]]] = []
        #: One dict per successful recovery: ``{"shard", "reason",
        #: "seconds", "replayed"}`` in occurrence order.
        self.recovery_events: List[Dict[str, object]] = []
        transports: List[ShardTransport] = []
        try:
            for shard in range(plan.k):
                lo, hi = plan.bounds[shard]
                transports.append(
                    transport_factory(lo, hi, dmat, backend, dynamic_repair)
                )
        except Exception:
            for transport in transports:
                transport.close()
            _close_factory(transport_factory)
            raise
        self._transports = transports
        self._finalizer = weakref.finalize(
            self, ShardWorkerPool._shutdown, transports, transport_factory
        )

    @staticmethod
    def _shutdown(transports: List[ShardTransport], factory=None) -> None:
        for transport in transports:
            transport.close()
        # Stateful factories (the socket launcher) own placement-level
        # resources — an auto-spawned server process, its socket file —
        # that outlive any one transport; reap them after the workers.
        _close_factory(factory)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Stop every worker (idempotent; also runs via the finalizer)."""
        self._finalizer()

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def num_workers(self) -> int:
        return len(self._transports)

    def alive_workers(self) -> int:
        """How many workers still answer (for tests/diagnostics)."""
        return sum(1 for transport in self._transports if transport.alive)

    def kill_worker(self, shard: int) -> None:
        """Kill one shard's worker outright (chaos drills).

        Uses the transport's ``kill`` when it has one (SIGKILL for pipe
        workers, abrupt stream teardown for sockets) so recovery faces a
        genuine crash, not an orderly stop.
        """
        transport = self._transports[shard]
        kill = getattr(transport, "kill", None)
        if callable(kill):
            kill()
        else:  # pragma: no cover - every shipped transport has kill()
            transport.close()

    # -- profile sync ---------------------------------------------------
    def reset(self, profile: StrategyProfile, model_spec=None) -> None:
        """Rebuild every worker's overlay from scratch (full rebind).

        ``model_spec`` is the coordinator's cost-model spec tuple (or
        ``None`` for the paper's default); it is mirrored with the
        strategies so a respawned worker replays into the same pricing.
        """
        strategies = tuple(
            tuple(sorted(profile.strategy(peer)))
            for peer in range(profile.n)
        )
        self._last_reset = (strategies, model_spec)
        self._rebinds = []
        self._broadcast(("reset", strategies, model_spec))

    def rebind(self, peer: int, targets) -> None:
        """Splice one peer's new out-edges into every worker's overlay."""
        targets = tuple(sorted(targets))
        if self._last_reset is not None:
            self._rebinds.append((int(peer), targets))
        self._broadcast(("rebind", peer, targets))

    def ping(self, delay: float = 0.0) -> None:
        """One no-op round trip to every worker (liveness / latency).

        ``delay`` holds each worker's reply for that many seconds — a
        stand-in for cross-host wire latency: the workers delay
        concurrently, so a pipelined broadcast pays it once while a
        sequential one pays it ``k`` times.
        """
        self._broadcast(("ping", float(delay)) if delay else ("ping",))

    # -- recovery -------------------------------------------------------
    def _respawn(self, shard: int) -> ShardTransport:
        """Replace a dead shard worker and rebuild its mirrored state.

        The old transport is torn down, a replacement comes from the
        same factory (socket factories also resurrect an auto-spawned
        server that died with its worker), and the pool's mirrored
        profile history — one ``reset`` plus every rebind since, in
        order — is replayed so the new worker's overlay is byte-for-byte
        the state the dead one held.  Raises :class:`ShardWorkerError`
        if the replacement itself fails during replay.
        """
        old = self._transports[shard]
        try:
            old.close()
        except Exception:  # noqa: BLE001 - it was already dying
            pass
        lo, hi = self._plan.bounds[shard]
        fresh = self._factory(
            lo, hi, self._dmat, self._backend, self._dynamic
        )
        try:
            if self._last_reset is not None:
                strategies, model_spec = self._last_reset
                fresh.request(("reset", strategies, model_spec))
                for peer, targets in self._rebinds:
                    fresh.request(("rebind", peer, targets))
        except ShardWorkerError:
            fresh.close()
            raise
        # In-place: the finalizer holds this *list*, so the replacement
        # is reaped at shutdown exactly like the transport it replaces.
        self._transports[shard] = fresh
        return fresh

    def _recover(self, shard: int, message: Tuple, error: ShardWorkerError):
        """Respawn ``shard`` and retry ``message`` once per budget unit.

        Safe for every protocol message: mutations are idempotent and
        already mirrored (so respawn replay + retry converge on the same
        state), queries are pure.  Returns the retried reply or raises
        the original error when the budget is spent or replacements keep
        dying.
        """
        while self._respawns_left[shard] > 0:
            self._respawns_left[shard] -= 1
            started = time.monotonic()
            try:
                fresh = self._respawn(shard)
                reply = fresh.request(message)
            except ShardWorkerError:
                continue
            self.recovery_events.append(
                {
                    "shard": shard,
                    "reason": str(error).splitlines()[0],
                    "seconds": time.monotonic() - started,
                    "replayed": (
                        0 if self._last_reset is None
                        else 1 + len(self._rebinds)
                    ),
                }
            )
            return reply
        raise error

    def _exchange(self, requests: Sequence[Tuple[int, Tuple]]):
        """Run one request per listed shard, replies in list order.

        Pipelined (default): every request goes on the wire before any
        reply is collected, so the wall-clock cost is one worker's
        round trip plus the slowest handler — not the sum of ``k`` round
        trips.  When a worker fails mid-exchange the remaining streams
        are still drained (each transport sees a complete send/recv pair
        or is dead); the failed shards then go through recovery (respawn
        + one retry each) when the pool has a :class:`RecoveryPolicy`,
        and the first unrecovered error is re-raised.
        """
        if not self.pipelined:
            replies = []
            for shard, message in requests:
                try:
                    replies.append(
                        self._transports[shard].request(message)
                    )
                except ShardWorkerError as error:
                    replies.append(self._recover(shard, message, error))
            return replies
        failed: List[Tuple[int, int, Tuple, ShardWorkerError]] = []
        pending: List[Optional[int]] = []
        for position, (shard, message) in enumerate(requests):
            try:
                self._transports[shard].send(message)
                pending.append(shard)
            except ShardWorkerError as error:
                failed.append((position, shard, message, error))
                pending.append(None)
        replies: List = []
        for position, shard in enumerate(pending):
            if shard is None:
                replies.append(None)
                continue
            try:
                replies.append(self._transports[shard].recv())
            except ShardWorkerError as error:
                failed.append(
                    (position, shard, requests[position][1], error)
                )
                replies.append(None)
        for position, shard, message, error in failed:
            replies[position] = self._recover(shard, message, error)
        return replies

    def _broadcast(self, message: Tuple):
        return self._exchange(
            [(shard, message) for shard in range(len(self._transports))]
        )

    # -- data plane -----------------------------------------------------
    def rows(self, peers: Sequence[int]) -> np.ndarray:
        """The requested distance rows, gathered from their owner shards.

        Returns a fresh caller-owned ``(len(peers), n)`` array in
        ``peers`` order; only the requested rows cross the transport,
        and the per-shard requests fan out pipelined.
        """
        peers = list(peers)
        out = np.empty((len(peers), self._n), dtype=np.float64)
        by_shard: Dict[int, List[int]] = {}
        for position, peer in enumerate(peers):
            if not 0 <= peer < self._n:
                raise IndexError(f"peer {peer} out of range [0, {self._n})")
            by_shard.setdefault(self._plan.owner(peer), []).append(position)
        shards = sorted(by_shard)
        replies = self._exchange(
            [
                (
                    shard,
                    (
                        "rows",
                        [peers[position] for position in by_shard[shard]],
                    ),
                )
                for shard in shards
            ]
        )
        for shard, fetched in zip(shards, replies):
            for row, position in enumerate(by_shard[shard]):
                out[position] = fetched[row]
        return out

    def stretch_sums(self, shard: int) -> Tuple[np.ndarray, float]:
        """One shard's ``(stretch row sums, stretch total)`` reductions.

        O(n/k) + O(1) values over the wire — the block itself never
        leaves the worker.
        """
        return self._exchange([(shard, ("sums",))])[0]

    def stretch_sums_all(
        self, shards: Optional[Sequence[int]] = None
    ) -> Dict[int, Tuple[np.ndarray, float]]:
        """The ``sums`` reductions of several shards, fanned out at once.

        The cost-query prefetch path: after a reset/rebind every shard's
        sum cache is stale, and collecting all of them in one pipelined
        broadcast overlaps the k workers' block builds.
        """
        shards = (
            list(range(self._plan.k)) if shards is None else sorted(shards)
        )
        replies = self._exchange([(shard, ("sums",)) for shard in shards])
        return dict(zip(shards, replies))

    def solve(
        self,
        items: Sequence[Tuple[int, Tuple[int, ...]]],
        alpha: float,
        method: str,
    ) -> List[BestResponseResult]:
        """Best responses for ``items``, solved by each peer's owner shard.

        ``items`` holds ``(peer, current_strategy)`` pairs; results come
        back in ``items`` order.  Only strategies and responses cross
        the wire — each worker builds and caches the service matrices of
        the peers it owns (see :meth:`_WorkerState.solve`).
        """
        items = [(int(peer), tuple(strategy)) for peer, strategy in items]
        by_shard: Dict[int, List[int]] = {}
        for position, (peer, _strategy) in enumerate(items):
            if not 0 <= peer < self._n:
                raise IndexError(f"peer {peer} out of range [0, {self._n})")
            by_shard.setdefault(self._plan.owner(peer), []).append(position)
        shards = sorted(by_shard)
        replies = self._exchange(
            [
                (
                    shard,
                    (
                        "solve",
                        tuple(items[position] for position in by_shard[shard]),
                        float(alpha),
                        method,
                    ),
                )
                for shard in shards
            ]
        )
        out: List[Optional[BestResponseResult]] = [None] * len(items)
        for shard, solved in zip(shards, replies):
            for row, position in enumerate(by_shard[shard]):
                out[position] = solved[row]
        return out

    def worker_stats(self) -> List[Dict[str, int]]:
        """Per-worker counters (builds, repairs, resident block bytes)."""
        return self._broadcast(("stats",))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardWorkerPool(k={self._plan.k}, n={self._n}, "
            f"closed={self.closed})"
        )


def _close_factory(factory) -> None:
    """Close a stateful transport factory (classes have nothing to own)."""
    if factory is None or isinstance(factory, type):
        return
    close = getattr(factory, "close", None)
    if callable(close):
        close()


# ----------------------------------------------------------------------
# Shard-side solver backend
# ----------------------------------------------------------------------
class ShardSolverBackend(SolverBackend):
    """Route gain-sweep solves to the shard workers that own the peers.

    The ``backend="shard"`` spec: instead of building every service
    matrix in the coordinator and shipping store handles to a solver
    pool, the sweep ships each peer's ``(peer, strategy)`` task to the
    worker that owns the peer's row block; the worker builds, caches and
    row-repairs that peer's matrix locally and solves through its own
    in-worker backend.  The coordinator then holds *no* service matrices
    for swept peers at all — solves co-locate with the shard fabric.

    Resolution is two-phase because drivers resolve backends at
    construction time, before any evaluator exists: the instance starts
    unbound, and the sharded evaluator binds its live worker pool on
    each sweep (:meth:`~repro.core.sharded.ShardedEvaluator.
    _resolve_solver_backend`).  Plain evaluators reject the spec with a
    clear error instead of silently solving locally.
    """

    name = "shard"
    distributed = False
    wants_tasks = True

    def __init__(self, workers: int = 1) -> None:
        super().__init__(workers)
        self._pool: Optional[ShardWorkerPool] = None

    @property
    def pool(self) -> Optional[ShardWorkerPool]:
        return self._pool

    def bind_pool(self, pool: ShardWorkerPool) -> None:
        """Point the backend at the evaluator's live worker pool."""
        self._pool = pool

    def run_solves(
        self,
        peers: Sequence[int],
        solve_local,
        make_task=None,
    ) -> List[BestResponseResult]:
        if not peers:
            return []
        if make_task is None:
            # No task channel (e.g. a direct best_response call): solve
            # locally — same pure function, same bytes, same results.
            return [solve_local(peer) for peer in peers]
        if self._pool is None or self._pool.closed:
            raise ShardWorkerError(
                "shard solver backend has no live worker pool; use a "
                "ShardedEvaluator with shard_placement 'process' or "
                "'socket'"
            )
        tasks = [make_task(peer) for peer in peers]
        alpha, method = tasks[0][3], tasks[0][4]
        return self._pool.solve(
            [(task[1], task[2]) for task in tasks], alpha, method
        )
