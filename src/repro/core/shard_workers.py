"""Shard *worker processes*: distance row blocks served across processes.

:class:`~repro.core.sharded.ShardedEvaluator` (PR 4) bounds one
process's resident overlay-distance memory, but all ``k`` row-block
shards still live in a single address space.  This module promotes each
shard to a **long-lived worker process** that owns its distance slice —
the next rung toward populations whose overlay state cannot fit any one
process:

* Each worker holds its own copy of the bound profile's overlay and
  builds/repairs its ``[lo, hi)`` distance row block with the *same*
  updater the in-process :class:`~repro.core.sharded.ShardedDistances`
  uses — full builds are per-source Dijkstra runs, and dirty rows are
  patched in place by the incremental dynamic-SSSP repairer
  (:mod:`repro.graphs.dynamic_sssp`) unless the pool was built with
  ``dynamic_repair=False``.  Either path computes each distance as the
  same folded float64 sum, so the bytes are identical wherever (and
  however) they are computed.
* The cross-shard interface stays narrow (the communication-efficiency
  discipline of distributed self-stabilizing protocols): shards exchange
  only the ``distance_rows`` they are asked for and O(n/k) stretch
  *reductions* — never whole matrices.  A single-peer rebind ships just
  ``(peer, new_targets)``; every worker re-derives the affected rows
  from its own overlay with the same reverse-reachability BFS the
  coordinator runs, so no row set crosses the wire either.
* The transport is abstracted behind :class:`ShardTransport` — the
  default :class:`PipeTransport` forks one worker per shard over a
  ``multiprocessing`` pipe; a socket transport can slot in later without
  touching the pool or the evaluator.

Message protocol (one request/reply pair per call, strictly ordered per
worker):

=============  =======================================  ==============
request        payload                                  reply payload
=============  =======================================  ==============
``"reset"``    strategies (tuple of target tuples)      ``None``
``"rebind"``   ``(peer, targets)``                      ``None``
``"rows"``     global row ids owned by this shard       ``(m, n)`` array
``"sums"``     —                                        ``(row sums, total)``
``"stats"``    —                                        counter dict
``"ping"``     —                                        ``"pong"``
``"stop"``     —                                        ``None`` (exits)
=============  =======================================  ==============

Replies are ``("ok", payload)`` or ``("error", traceback_text)``; the
coordinator re-raises the latter as :class:`ShardWorkerError`.

Lifecycle: workers are daemonic and the pool registers a
``weakref.finalize`` safety net (mirroring the backend ``_shutdown``
pattern in :mod:`repro.core.backends`), so an abandoned pool — a test
failure mid-run, a CLI Ctrl-C — still tears its processes down at
garbage collection or interpreter exit; :meth:`ShardWorkerPool.close`
is the deterministic, idempotent path.
"""

from __future__ import annotations

import traceback
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.costs import stretch_from_distance_rows
from repro.core.evaluator import GameEvaluator
from repro.core.profile import StrategyProfile
from repro.core.sharded import ShardPlan
from repro.core.topology import overlay_from_matrix
from repro.graphs.digraph import WeightedDigraph
from repro.graphs.dynamic_sssp import RowRepairer
from repro.graphs.shortest_paths import multi_source_distances

#: The coordinator's reverse-reachability BFS, shared (not duplicated):
#: worker dirty sets agree with the coordinator's *because this is the
#: same function* — any future change applies to both sides at once.
_reverse_reachable = GameEvaluator._reverse_reachable

__all__ = [
    "ShardWorkerError",
    "ShardTransport",
    "PipeTransport",
    "ShardWorkerPool",
    "PLACEMENT_SPECS",
]

#: ``placement=`` spec strings accepted by the sharded evaluator (and
#: therefore by the ``--shard-placement`` CLI flag).
PLACEMENT_SPECS = ("local", "process")


class ShardWorkerError(RuntimeError):
    """A shard worker failed while serving a request (traceback inside)."""


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _WorkerState:
    """One shard's state machine, running inside the worker process.

    Mirrors the in-process :class:`~repro.core.sharded.ShardedDistances`
    semantics for a single always-resident block: built lazily by one
    multi-source Dijkstra over the shard's own sources, repaired
    row-incrementally after rebinds, dirt ignored while the block is
    unbuilt (it will be built in full anyway).
    """

    def __init__(
        self,
        lo: int,
        hi: int,
        dmat: np.ndarray,
        backend: str,
        dynamic: bool = True,
    ) -> None:
        self.lo = lo
        self.hi = hi
        self.dmat = dmat
        self.backend = backend
        self.overlay: Optional[WeightedDigraph] = None
        self.block: Optional[np.ndarray] = None
        self.dirty: set = set()
        self.sums: Optional[Tuple[np.ndarray, float]] = None
        self.repairer: Optional[RowRepairer] = (
            RowRepairer(backend) if dynamic else None
        )
        self.cursor = 0
        self.block_builds = 0
        self.rows_recomputed = 0
        self.vertices_repaired = 0
        self.full_fallbacks = 0
        self.resident_peak_bytes = 0

    # -- profile sync ---------------------------------------------------
    def reset(self, strategies: Sequence[Tuple[int, ...]]) -> None:
        profile = StrategyProfile([frozenset(s) for s in strategies])
        self.overlay = overlay_from_matrix(self.dmat, profile)
        self.block = None
        self.dirty = set()
        self.sums = None
        if self.repairer is not None:
            self.repairer.reset()
        self.cursor = 0

    def rebind(self, peer: int, targets: Tuple[int, ...]) -> None:
        overlay = self._require_overlay()
        # Same invariant as the coordinator's incremental rebind: edges
        # *into* peer are identical before and after the splice, so the
        # reverse reachability computed on the old overlay is valid for
        # both — and identical to the coordinator's affected set (the
        # maintained reverse index answers the same query as the BFS,
        # just in O(affected edges)).
        new_out = {j: float(self.dmat[peer, j]) for j in targets}
        if self.repairer is not None:
            affected = self.repairer.apply_rebind(overlay, peer, new_out)
        else:
            affected = _reverse_reachable(overlay, peer)
            overlay.remove_out_edges(peer)
            for j, w in new_out.items():
                overlay.add_edge(peer, j, w)
        mine = {row for row in affected if self.lo <= row < self.hi}
        if mine:
            self.sums = None
            if self.block is not None:
                self.dirty |= mine

    # -- queries --------------------------------------------------------
    def _require_overlay(self) -> WeightedDigraph:
        if self.overlay is None:
            raise RuntimeError("no profile bound; send a 'reset' first")
        return self.overlay

    def clean_block(self) -> np.ndarray:
        overlay = self._require_overlay()
        if self.block is None:
            self.block = multi_source_distances(
                overlay, list(range(self.lo, self.hi)), backend=self.backend
            )
            self.dirty = set()
            if self.repairer is not None:
                self.cursor = self.repairer.head
            self.block_builds += 1
            self.resident_peak_bytes = max(
                self.resident_peak_bytes, self.block.nbytes
            )
        elif self.dirty:
            rows = sorted(self.dirty)
            if self.repairer is not None:
                repaired, fallbacks = self.repairer.repair_block(
                    self.block,
                    [row - self.lo for row in rows],
                    rows,
                    overlay,
                    self.cursor,
                )
                self.cursor = self.repairer.head
                self.vertices_repaired += repaired
                self.full_fallbacks += fallbacks
            else:
                fresh = multi_source_distances(
                    overlay, rows, backend=self.backend
                )
                self.block[[row - self.lo for row in rows]] = fresh
            self.rows_recomputed += len(rows)
            self.dirty = set()
        return self.block

    def rows(self, wanted: Sequence[int]) -> np.ndarray:
        block = self.clean_block()
        return block[[row - self.lo for row in wanted]].copy()

    def stretch_sums(self) -> Tuple[np.ndarray, float]:
        # Bitwise identical to ShardedEvaluator._shard_stretch_sums:
        # same stretch rows, same reduction order, same bytes.
        if self.sums is None:
            block = self.clean_block()
            stretch = stretch_from_distance_rows(
                self.dmat[self.lo : self.hi], block, range(self.lo, self.hi)
            )
            self.sums = (stretch.sum(axis=1), float(stretch.sum()))
        return self.sums

    def stats(self) -> Dict[str, int]:
        return {
            "shard_rows": self.hi - self.lo,
            "block_builds": self.block_builds,
            "rows_recomputed": self.rows_recomputed,
            "vertices_repaired": self.vertices_repaired,
            "full_fallbacks": self.full_fallbacks,
            "resident_bytes": 0 if self.block is None else self.block.nbytes,
            "resident_peak_bytes": self.resident_peak_bytes,
        }


def _worker_main(
    conn,
    lo: int,
    hi: int,
    dmat: np.ndarray,
    backend: str,
    dynamic: bool = True,
) -> None:
    """Worker process entry point: serve requests until ``stop``/EOF."""
    state = _WorkerState(lo, hi, dmat, backend, dynamic)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # coordinator went away
            return
        kind = message[0]
        try:
            if kind == "stop":
                conn.send(("ok", None))
                return
            if kind == "reset":
                reply = state.reset(message[1])
            elif kind == "rebind":
                reply = state.rebind(message[1], message[2])
            elif kind == "rows":
                reply = state.rows(message[1])
            elif kind == "sums":
                reply = state.stretch_sums()
            elif kind == "stats":
                reply = state.stats()
            elif kind == "ping":
                reply = "pong"
            else:
                raise ValueError(f"unknown shard-worker request {kind!r}")
            conn.send(("ok", reply))
        except Exception:  # noqa: BLE001 - forwarded to the coordinator
            conn.send(("error", traceback.format_exc()))


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
class ShardTransport:
    """One ordered request/reply channel to a shard worker.

    The seam that keeps the *placement* of a shard separate from how
    messages reach it: :class:`PipeTransport` is the in-host default; a
    socket transport serving the same request/reply protocol can slot in
    without touching :class:`ShardWorkerPool` or the evaluator.
    """

    def request(self, message: Tuple):
        """Send ``message``, block for the reply payload (or raise)."""
        raise NotImplementedError

    def close(self) -> None:
        """Tear the channel (and any owned worker) down; idempotent."""

    @property
    def alive(self) -> bool:
        """Whether the far side is still expected to answer."""
        return False


class PipeTransport(ShardTransport):
    """A forked worker process behind a ``multiprocessing`` pipe.

    Uses the ``fork`` start method where available so the worker
    inherits the coordinator's distance matrix without pickling it; the
    spawn fallback ships ``dmat`` once at startup.  Workers are daemonic
    — the OS reaps them if the coordinator dies without closing.
    """

    def __init__(
        self,
        lo: int,
        hi: int,
        dmat: np.ndarray,
        backend: str,
        dynamic: bool = True,
    ):
        import multiprocessing

        context = multiprocessing
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        parent, child = context.Pipe()
        self._conn = parent
        self._process = context.Process(
            target=_worker_main,
            args=(child, lo, hi, dmat, backend, dynamic),
            daemon=True,
            name=f"repro-shard-{lo}-{hi}",
        )
        self._process.start()
        child.close()  # the worker holds its own copy of the fd

    def request(self, message: Tuple):
        try:
            self._conn.send(message)
            kind, payload = self._conn.recv()
        except (EOFError, OSError) as error:
            raise ShardWorkerError(
                f"shard worker {self._process.name} died mid-request "
                f"({type(error).__name__})"
            ) from error
        if kind == "error":
            raise ShardWorkerError(
                f"shard worker {self._process.name} failed:\n{payload}"
            )
        return payload

    @property
    def alive(self) -> bool:
        return self._process.is_alive()

    def close(self) -> None:
        _stop_pipe_worker(self._conn, self._process)


def _stop_pipe_worker(conn, process) -> None:
    """Stop one pipe worker; safe to call repeatedly or post-mortem."""
    if process.is_alive():
        try:
            conn.send(("stop",))
            conn.recv()
        except (EOFError, OSError):  # already gone / pipe torn
            pass
        process.join(timeout=5)
        if process.is_alive():  # pragma: no cover - stuck worker
            process.terminate()
            process.join(timeout=5)
    conn.close()


class ShardWorkerPool:
    """One long-lived worker per shard, serving the distance row blocks.

    The pool is the coordinator-side face of process placement: it
    routes :meth:`rows` requests to the owning shards (assembling the
    reply in ``peers`` order, exactly like
    :meth:`~repro.core.sharded.ShardedDistances.rows`), broadcasts
    profile syncs, and collects per-worker stats.  All methods are
    synchronous and ordered per worker, so a ``rows`` request can never
    overtake the ``rebind`` that dirtied it.
    """

    def __init__(
        self,
        plan: ShardPlan,
        dmat: np.ndarray,
        backend: str = "auto",
        transport_factory=PipeTransport,
        dynamic_repair: bool = True,
    ) -> None:
        self._plan = plan
        self._n = plan.n
        transports: List[ShardTransport] = []
        try:
            for shard in range(plan.k):
                lo, hi = plan.bounds[shard]
                transports.append(
                    transport_factory(lo, hi, dmat, backend, dynamic_repair)
                )
        except Exception:
            for transport in transports:
                transport.close()
            raise
        self._transports = transports
        self._finalizer = weakref.finalize(
            self, ShardWorkerPool._shutdown, transports
        )

    @staticmethod
    def _shutdown(transports: List[ShardTransport]) -> None:
        for transport in transports:
            transport.close()

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Stop every worker (idempotent; also runs via the finalizer)."""
        self._finalizer()

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def num_workers(self) -> int:
        return len(self._transports)

    def alive_workers(self) -> int:
        """How many workers still answer (for tests/diagnostics)."""
        return sum(1 for transport in self._transports if transport.alive)

    # -- profile sync ---------------------------------------------------
    def reset(self, profile: StrategyProfile) -> None:
        """Rebuild every worker's overlay from scratch (full rebind)."""
        strategies = tuple(
            tuple(sorted(profile.strategy(peer)))
            for peer in range(profile.n)
        )
        self._broadcast(("reset", strategies))

    def rebind(self, peer: int, targets) -> None:
        """Splice one peer's new out-edges into every worker's overlay."""
        self._broadcast(("rebind", peer, tuple(sorted(targets))))

    def _broadcast(self, message: Tuple) -> None:
        for transport in self._transports:
            transport.request(message)

    # -- data plane -----------------------------------------------------
    def rows(self, peers: Sequence[int]) -> np.ndarray:
        """The requested distance rows, gathered shard by shard.

        Returns a fresh caller-owned ``(len(peers), n)`` array in
        ``peers`` order; only the requested rows cross the transport.
        """
        peers = list(peers)
        out = np.empty((len(peers), self._n), dtype=np.float64)
        by_shard: Dict[int, List[int]] = {}
        for position, peer in enumerate(peers):
            if not 0 <= peer < self._n:
                raise IndexError(f"peer {peer} out of range [0, {self._n})")
            by_shard.setdefault(self._plan.owner(peer), []).append(position)
        for shard in sorted(by_shard):
            positions = by_shard[shard]
            fetched = self._transports[shard].request(
                ("rows", [peers[position] for position in positions])
            )
            for row, position in enumerate(positions):
                out[position] = fetched[row]
        return out

    def stretch_sums(self, shard: int) -> Tuple[np.ndarray, float]:
        """One shard's ``(stretch row sums, stretch total)`` reductions.

        O(n/k) + O(1) values over the wire — the block itself never
        leaves the worker.
        """
        return self._transports[shard].request(("sums",))

    def worker_stats(self) -> List[Dict[str, int]]:
        """Per-worker counters (builds, repairs, resident block bytes)."""
        return [
            transport.request(("stats",)) for transport in self._transports
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardWorkerPool(k={self._plan.k}, n={self._n}, "
            f"closed={self.closed})"
        )
