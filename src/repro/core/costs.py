"""The cost model of the selfish topology game.

Individual cost of peer ``i`` under profile ``s`` (paper, Section 2)::

    c_i(s) = alpha * |s_i| + sum_{j != i} stretch_{G[s]}(i, j)

where ``stretch_G(i, j) = d_G(i, j) / d(i, j)``.  The social cost is the sum
over all peers, equivalently ``alpha * |E| + sum_{i != j} stretch(i, j)``,
and splits into the link cost ``C_E`` and the stretch cost ``C_S``.

Pairs that cannot be reached over the overlay have infinite stretch, so any
profile that is not strongly connected has infinite (individual and social)
cost — matching the game-theoretic reading that such strategies are never
best responses for ``n >= 2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.profile import StrategyProfile
from repro.core.topology import overlay_from_matrix
from repro.graphs.digraph import WeightedDigraph
from repro.graphs.shortest_paths import all_pairs_distances

__all__ = [
    "CostBreakdown",
    "stretch_from_distances",
    "stretch_from_distance_rows",
    "stretch_matrix",
    "individual_costs",
    "individual_costs_from_stretch",
    "social_cost",
    "social_cost_from_stretch",
]


@dataclass(frozen=True)
class CostBreakdown:
    """Social cost split into its components.

    Attributes
    ----------
    link_cost:
        ``C_E = alpha * |E|`` — total link-maintenance cost.
    stretch_cost:
        ``C_S = sum_{i != j} stretch(i, j)`` — total latency cost.
    extra_cost:
        Aggregate :meth:`~repro.core.cost_model.CostModel.social_extra`
        term of the game's cost model (e.g. ``beta * |E|`` under
        :class:`~repro.core.cost_model.CongestionModel`); ``0.0`` for the
        paper's unilateral game.
    """

    link_cost: float
    stretch_cost: float
    extra_cost: float = 0.0

    @property
    def total(self) -> float:
        """``C = C_E + C_S`` plus any cost-model extra term.

        The extra is added only when nonzero so the unilateral float sum
        stays byte-for-byte ``link_cost + stretch_cost``.
        """
        base = self.link_cost + self.stretch_cost
        if self.extra_cost:
            return base + self.extra_cost
        return base

    def __str__(self) -> str:
        text = (
            f"C = {self.total:.6g} "
            f"(links {self.link_cost:.6g} + stretch {self.stretch_cost:.6g}"
        )
        if self.extra_cost:
            text += f" + extra {self.extra_cost:.6g}"
        return text + ")"


def stretch_from_distances(
    distance_matrix: np.ndarray, overlay_distances: np.ndarray
) -> np.ndarray:
    """Pairwise stretch from a precomputed overlay distance matrix.

    This is the normalization core shared by :func:`stretch_matrix` and
    the caching :class:`~repro.core.evaluator.GameEvaluator` (which
    maintains overlay distances incrementally and must not re-run the
    all-pairs computation).
    """
    n = distance_matrix.shape[0]
    if overlay_distances.shape != (n, n):
        raise ValueError(
            f"overlay distance shape {overlay_distances.shape} does not "
            f"match metric distance shape {distance_matrix.shape}"
        )
    return stretch_from_distance_rows(
        distance_matrix, overlay_distances, range(n)
    )


def stretch_from_distance_rows(
    distance_rows: np.ndarray,
    overlay_rows: np.ndarray,
    rows,
) -> np.ndarray:
    """Stretch for a *row block* of the (overlay) distance matrix.

    ``distance_rows`` and ``overlay_rows`` are the metric and overlay
    distances of the global source rows listed in ``rows`` (shape
    ``(len(rows), n)``).  Every operation is elementwise, so the values
    are bitwise identical to the corresponding rows of
    :func:`stretch_from_distances` on the full matrices — the property
    that lets the sharded evaluator (:mod:`repro.core.sharded`) stream
    stretch sums shard by shard without materializing ``n x n`` arrays.
    """
    rows = np.asarray(list(rows), dtype=int)
    n = distance_rows.shape[1]
    if overlay_rows.shape != distance_rows.shape:
        raise ValueError(
            f"overlay distance shape {overlay_rows.shape} does not "
            f"match metric distance shape {distance_rows.shape}"
        )
    with np.errstate(divide="ignore", invalid="ignore"):
        stretch = overlay_rows / distance_rows
    off_diagonal = rows[:, None] != np.arange(n)[None, :]
    zero_direct = (distance_rows == 0) & off_diagonal
    if zero_direct.any():
        zero_overlay = overlay_rows == 0
        stretch[zero_direct & zero_overlay] = 1.0
        stretch[zero_direct & ~zero_overlay] = math.inf
    stretch[np.arange(len(rows)), rows] = 0.0
    return stretch


def stretch_matrix(
    distance_matrix: np.ndarray, overlay: WeightedDigraph
) -> np.ndarray:
    """Pairwise stretch ``S[i, j] = d_G(i, j) / d(i, j)``.

    Conventions: the diagonal is 0 (a peer has no stretch to itself);
    unreachable pairs get ``inf``.  Coincident peers (``d(i, j) = 0`` for
    ``i != j``) have stretch 1 when the overlay also reaches them at
    distance 0 and ``inf`` otherwise.
    """
    n = overlay.num_nodes
    if distance_matrix.shape != (n, n):
        raise ValueError(
            f"distance matrix shape {distance_matrix.shape} does not match "
            f"overlay with {n} nodes"
        )
    return stretch_from_distances(distance_matrix, all_pairs_distances(overlay))


def individual_costs_from_stretch(
    stretch: np.ndarray, profile: StrategyProfile, alpha: float
) -> np.ndarray:
    """Vector of individual costs given a precomputed stretch matrix."""
    degrees = np.array([profile.out_degree(i) for i in range(profile.n)])
    return alpha * degrees + stretch.sum(axis=1)


def social_cost_from_stretch(
    stretch: np.ndarray, profile: StrategyProfile, alpha: float
) -> CostBreakdown:
    """Social cost breakdown given a precomputed stretch matrix."""
    return CostBreakdown(
        link_cost=alpha * profile.num_links,
        stretch_cost=float(stretch.sum()),
    )


def individual_costs(
    distance_matrix: np.ndarray,
    profile: StrategyProfile,
    alpha: float,
) -> np.ndarray:
    """Vector of individual costs ``c_i(s)`` for every peer."""
    overlay = overlay_from_matrix(distance_matrix, profile)
    stretch = stretch_matrix(distance_matrix, overlay)
    return individual_costs_from_stretch(stretch, profile, alpha)


def social_cost(
    distance_matrix: np.ndarray,
    profile: StrategyProfile,
    alpha: float,
) -> CostBreakdown:
    """Social cost breakdown ``C = alpha |E| + sum stretch``."""
    overlay = overlay_from_matrix(distance_matrix, profile)
    stretch = stretch_matrix(distance_matrix, overlay)
    return social_cost_from_stretch(stretch, profile, alpha)
