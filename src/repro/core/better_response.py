"""Better-response dynamics: minimal-effort selfish rewiring.

Best-response dynamics assume peers solve an NP-hard facility-location
problem at every activation.  Real peers are lazier: a *better response*
is any strategy change that strictly lowers the peer's cost.  This module
implements the canonical restricted deviation set — single-link **flips**
(add one link, drop one link, or swap one link for another) — giving a
``O(n^2)``-work-per-activation dynamic that models incremental rewiring.

Relationship to the paper's results, pinned by the test suite:

* Fixpoints of flip dynamics are only *flip-stable*, a weaker notion than
  Nash (a profile can be flip-stable while a multi-link rewire would
  still pay off); every Nash equilibrium is flip-stable.
* On the Theorem 5.1 witness even these lazy dynamics fail to stabilize:
  the instability does not depend on peers optimizing exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.dynamics import CycleInfo, RoundRobinScheduler
from repro.core.evaluator import GameEvaluator
from repro.core.game import TopologyGame
from repro.core.profile import StrategyProfile
from repro.graphs.shortest_paths import single_source_distances

__all__ = [
    "flip_candidates",
    "find_improving_flip",
    "find_improving_flip_naive",
    "is_flip_stable",
    "BetterResponseResult",
    "BetterResponseDynamics",
]

_RELATIVE_TOLERANCE = 1e-9


def flip_candidates(
    profile: StrategyProfile, peer: int
) -> Iterator[StrategyProfile]:
    """All profiles reachable by one link flip of ``peer``.

    Yields drops (one link removed), adds (one link added), and swaps
    (one link replaced by another) — ``O(n^2)`` candidates.
    """
    current = profile.strategy(peer)
    others = [j for j in range(profile.n) if j != peer]
    for j in current:
        yield profile.with_strategy(peer, current - {j})
    for j in others:
        if j not in current:
            yield profile.with_strategy(peer, current | {j})
    for old in current:
        for new in others:
            if new not in current:
                yield profile.with_strategy(
                    peer, (current - {old}) | {new}
                )


def _peer_cost_key(
    game: TopologyGame, profile: StrategyProfile, peer: int
) -> Tuple[int, float]:
    """Lexicographic cost key ``(unreachable targets, finite cost part)``.

    Ordinary float comparison is useless through the infinite-cost regime
    (``inf < inf`` is false, so a flip that connects one more peer would
    never look improving from a disconnected start); the key makes
    "reach more peers" dominate any finite saving.

    Coincident peers follow the cost-model convention of
    :func:`repro.core.costs.stretch_matrix`: a target at direct distance 0
    counts as stretch 1 when the overlay reaches it at distance 0 and as
    unreachable otherwise.
    """
    overlay = game.overlay(profile)
    dist = single_source_distances(overlay, peer)
    dmat = game.distance_matrix
    unreachable = 0
    finite = game.alpha * profile.out_degree(peer)
    for j in range(game.n):
        if j == peer:
            continue
        direct = dmat[peer, j]
        if dist[j] == float("inf") or (direct == 0 and dist[j] > 0):
            unreachable += 1
        else:
            finite += (dist[j] / direct) if direct > 0 else 1.0
    return unreachable, finite


def find_improving_flip(
    game: TopologyGame,
    profile: StrategyProfile,
    peer: int,
    evaluator: Optional[GameEvaluator] = None,
) -> Optional[Tuple[StrategyProfile, float]]:
    """The best single-link flip of ``peer``, or None when none improves.

    Returns ``(new profile, gain)`` for the largest-gain flip; when the
    flip newly connects previously unreachable targets the reported gain
    is ``inf``.  All O(n^2) candidates are scored from one service-cost
    matrix (no per-candidate shortest-path runs); pass ``evaluator`` to
    reuse a warm cache, otherwise the game's shared evaluator is used.
    See :func:`find_improving_flip_naive` for the reference
    implementation.
    """
    if evaluator is None:
        evaluator = game.evaluator
    return evaluator.set_profile(profile).find_improving_flip(peer)


def find_improving_flip_naive(
    game: TopologyGame, profile: StrategyProfile, peer: int
) -> Optional[Tuple[StrategyProfile, float]]:
    """Reference implementation of :func:`find_improving_flip`.

    Runs one single-source Dijkstra per candidate flip (O(n^3 log n) per
    activation) and exists to validate the vectorized evaluator path in
    tests and benchmarks.
    """
    current_key = _peer_cost_key(game, profile, peer)
    tolerance = _RELATIVE_TOLERANCE * max(1.0, abs(current_key[1]))
    best: Optional[Tuple[StrategyProfile, float]] = None
    best_key: Optional[Tuple[int, float]] = None
    for candidate in flip_candidates(profile, peer):
        key = _peer_cost_key(game, candidate, peer)
        if key[0] > current_key[0]:
            continue
        if key[0] == current_key[0] and key[1] >= current_key[1] - tolerance:
            continue
        if best_key is None or key < best_key:
            gain = (
                float("inf")
                if key[0] < current_key[0]
                else current_key[1] - key[1]
            )
            best, best_key = (candidate, gain), key
    return best


def is_flip_stable(
    game: TopologyGame,
    profile: StrategyProfile,
    evaluator: Optional[GameEvaluator] = None,
) -> bool:
    """True when no peer has an improving single-link flip.

    Weaker than Nash: multi-link rewires are not considered.  Every Nash
    equilibrium is flip-stable but not vice versa.
    """
    if evaluator is None:
        evaluator = game.evaluator
    evaluator.set_profile(profile)
    return all(
        evaluator.find_improving_flip(peer) is None for peer in range(game.n)
    )


@dataclass(frozen=True)
class BetterResponseResult:
    """Outcome of a better-response (flip) dynamics run."""

    profile: StrategyProfile
    stopped_reason: str  # "flip_stable", "cycle", or "max_rounds"
    rounds_completed: int
    num_moves: int
    cycle: Optional[CycleInfo]

    @property
    def flip_stable(self) -> bool:
        return self.stopped_reason == "flip_stable"


class BetterResponseDynamics:
    """Round-based single-link-flip dynamics.

    Peers are activated by ``scheduler`` (default round robin); an
    activated peer applies its largest-gain improving flip, if any.
    Stops at a flip-stable profile, on a detected state cycle
    (deterministic schedulers), or at the round limit.

    By default every activation is scored from one cached service-cost
    matrix through a shared :class:`~repro.core.evaluator.GameEvaluator`
    (warm across the whole run).  Pass ``evaluator`` to share a cache
    with other components, or ``incremental=False`` to force the naive
    per-candidate-Dijkstra reference path (validation/benchmarks only).
    """

    def __init__(
        self,
        game: TopologyGame,
        scheduler=None,
        evaluator: Optional[GameEvaluator] = None,
        incremental: bool = True,
    ) -> None:
        self._game = game
        self._scheduler = (
            scheduler if scheduler is not None else RoundRobinScheduler()
        )
        self._incremental = incremental
        self._evaluator = evaluator

    def run(
        self,
        initial: Optional[StrategyProfile] = None,
        max_rounds: int = 300,
        detect_cycles: bool = True,
    ) -> BetterResponseResult:
        """Run flip dynamics from ``initial`` (default: empty profile)."""
        game = self._game
        profile = (
            initial if initial is not None else game.empty_profile()
        )
        if profile.n != game.n:
            raise ValueError(
                f"initial profile has {profile.n} peers, game has {game.n}"
            )
        detect = detect_cycles and getattr(
            self._scheduler, "deterministic", False
        )
        evaluator: Optional[GameEvaluator] = None
        if self._incremental:
            evaluator = (
                self._evaluator if self._evaluator is not None else game.evaluator
            )
        seen: Dict[tuple, int] = {}
        trail: List[Tuple[tuple, int]] = []
        moves = 0
        cycle: Optional[CycleInfo] = None
        stopped_reason = "max_rounds"
        rounds = 0
        for round_index in range(max_rounds):
            moved = False
            for peer in self._scheduler.order(round_index, game.n):
                if evaluator is not None:
                    flip = evaluator.set_profile(profile).find_improving_flip(
                        peer
                    )
                else:
                    flip = find_improving_flip_naive(game, profile, peer)
                if flip is None:
                    continue
                profile = flip[0]
                moves += 1
                moved = True
                if detect:
                    state = (profile.key(), peer)
                    if state in seen:
                        first = seen[state]
                        cycle = CycleInfo(
                            first_step=first,
                            period=moves - first,
                            profiles=tuple(
                                key
                                for key, marker in trail
                                if marker >= first
                            ),
                        )
                        stopped_reason = "cycle"
                        break
                    seen[state] = moves
                    trail.append((profile.key(), moves))
            else:
                rounds += 1
                if not moved:
                    stopped_reason = "flip_stable"
                    break
                continue
            break
        return BetterResponseResult(
            profile=profile,
            stopped_reason=stopped_reason,
            rounds_completed=rounds,
            num_moves=moves,
            cycle=cycle,
        )
