#!/usr/bin/env python3
"""Selfish rewiring vs engineered overlays, priced on the same peers.

The paper positions selfish topologies against structured systems
(Pastry/Tapestry-style designs; footnote 2's Tulip-like sqrt(n)
clustering).  This example makes the comparison concrete on one random
peer population:

1. let selfish peers reach an equilibrium by best-response dynamics,
2. build the structured portfolio (chain, star, Chord-style fingers,
   Tulip-style clustering) over the same metric,
3. price everything under the paper's cost model alpha|E| + sum stretch,
4. route a Zipf lookup workload over each topology and report the
   latencies peers would actually observe.

Run:  python examples/selfish_vs_structured.py
"""

from repro import BestResponseDynamics, TopologyGame
from repro.analysis import render_table
from repro.baselines import structured_portfolio
from repro.core.social_optimum import optimum_upper_bound
from repro.metrics import EuclideanMetric
from repro.simulation import LookupWorkload

N = 20
ALPHA = 3.0
SEED = 7

def main() -> None:
    metric = EuclideanMetric.random_uniform(N, dim=2, seed=SEED)
    game = TopologyGame(metric, ALPHA)
    workload = LookupWorkload(
        game, popularity="zipf", zipf_exponent=1.2, seed=SEED
    )

    topologies = {}
    result = BestResponseDynamics(game, method="greedy").run(max_rounds=200)
    assert result.converged
    topologies["selfish-equilibrium"] = result.profile
    topologies.update(structured_portfolio(metric))

    optimum = optimum_upper_bound(game, polish=False)
    rows = []
    for name, profile in topologies.items():
        breakdown = game.social_cost(profile)
        stats = workload.run(profile, num_lookups=3000)
        rows.append(
            {
                "design": name,
                "links": profile.num_links,
                "social_cost": breakdown.total,
                "vs_best_known": breakdown.total / optimum.upper,
                "mean_stretch": stats.mean_stretch,
                "p95_latency": stats.p95_latency,
            }
        )
    rows.sort(key=lambda row: row["social_cost"])
    print(
        render_table(
            rows,
            precision=4,
            title=(
                f"n={N}, alpha={ALPHA}: cost model + Zipf lookup workload "
                f"(best known C(OPT) <= {optimum.upper:.1f})"
            ),
        )
    )
    print()
    print(
        "Selfish peers reach a decent but not optimal topology here;\n"
        "the paper's Figure 1 shows geometries where the gap degrades to\n"
        "Theta(min(alpha, n)) — see examples/poa_phase_diagram.py."
    )

if __name__ == "__main__":
    main()
