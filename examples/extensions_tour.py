#!/usr/bin/env python3
"""Extensions tour: congestion costs and bilateral link formation.

The paper's conclusion invites extending the model with "aspects such as
overlay routing and congestion"; its related work contrasts unilateral
link formation with bilateral (consent-based) models.  This example runs
both extensions on the paper's own instances:

1. **Congestion** (`beta * in-degree`): equilibria are *unchanged* (a
   peer cannot rewire its own in-degree) but the social bill grows — the
   congestion selfish peers impose on others is a quantifiable negative
   externality.
2. **Bilateral formation** on the Theorem 5.1 witness: where unilateral
   selfishness has *no* stable state at all, requiring consent (and
   splitting the link bill) restores stability — improving dynamics reach
   a certified pairwise-stable topology in a handful of moves.

Run:  python examples/extensions_tour.py
"""

from repro import BestResponseDynamics, TopologyGame
from repro.constructions import build_no_nash_instance, certify_no_nash
from repro.extensions import (
    BilateralGame,
    CongestionGame,
    congestion_price_of_ignorance,
)
from repro.metrics import EuclideanMetric

def congestion_demo() -> None:
    print("— congestion extension —")
    metric = EuclideanMetric.random_uniform(10, dim=2, seed=3)
    base = TopologyGame(metric, alpha=1.0)
    equilibrium = BestResponseDynamics(base).run(max_rounds=100).profile

    for beta in (0.0, 1.0, 4.0):
        game = CongestionGame(metric, alpha=1.0, beta=beta)
        still_nash = game.is_nash(equilibrium)
        breakdown = game.social_cost(equilibrium)
        ignorance = congestion_price_of_ignorance(game, equilibrium)
        print(
            f"  beta={beta:>3}: equilibrium unchanged={still_nash}  "
            f"{breakdown}  price-of-ignorance={ignorance:.3f}"
        )
    print()

def bilateral_demo() -> None:
    print("— bilateral formation on the no-Nash witness —")
    unilateral = build_no_nash_instance()
    print(f"  unilateral: {BestResponseDynamics(unilateral).run()}")
    print(
        f"  unilateral equilibria among 2^20 profiles: "
        f"{certify_no_nash().num_equilibria}"
    )

    bilateral = BilateralGame(unilateral.metric, unilateral.alpha)
    topology, stable, steps = bilateral.improve_dynamics()
    certificate = bilateral.check_pairwise_stability(topology)
    print(
        f"  bilateral:  stabilized={stable} after {steps} single-edge "
        f"moves; certified pairwise-stable={certificate.is_stable}"
    )
    print(f"  stable edges: {sorted(topology.edges)}")
    print(f"  social cost:  {bilateral.social_cost(topology):.3f}")
    print()
    print(
        "Takeaway: the Section 5 instability is a property of unilateral\n"
        "link formation — consent + cost sharing (Corbo–Parkes style)\n"
        "already suffices to restore a stable topology on the same peers."
    )

if __name__ == "__main__":
    congestion_demo()
    bilateral_demo()
