#!/usr/bin/env python3
"""Non-convergence demo: the Theorem 5.1 witness that never stabilizes.

Walks through the paper's Section 5 on the canonical five-peer witness:

1. run best-response dynamics and watch them cycle (provably, via state
   hashing) instead of converging,
2. map the cycle onto the paper's Figure 3 candidates and replay the
   infinite loop ``1 -> 3 -> 4 -> 2 -> 1`` with exact deviation gains,
3. exhaustively certify that *no* pure Nash equilibrium exists among all
   2^20 strategy profiles (a few seconds of numpy),
4. contrast with a generic random instance, which converges immediately.

Run:  python examples/nonconvergence_demo.py
"""

from repro import BestResponseDynamics, TopologyGame
from repro.constructions import (
    CERTIFIED_ALPHAS,
    build_no_nash_instance,
    certify_no_nash,
    deviation_table,
    run_paper_cycle,
)
from repro.metrics import EuclideanMetric

def main() -> None:
    game = build_no_nash_instance()
    print(f"witness: n={game.n} peers in the plane, alpha={game.alpha}")
    print()

    # 1. Dynamics provably cycle.
    result = BestResponseDynamics(game).run(max_rounds=200)
    print(f"best-response dynamics: {result}")
    print()

    # 2. The paper's Figure 3 case analysis, machine-checked.
    print("figure 3 case analysis (exact improving deviations):")
    for row in deviation_table(game):
        print(
            f"  case {row.case}: {row.deviator_name} rewires "
            f"{set(row.old_strategy)} -> {set(row.new_strategy)} "
            f"(gain {row.gain:.3f}) -> case {row.next_case}"
        )
    steps = run_paper_cycle(game)
    loop = " -> ".join(str(s.case) for s in steps) + f" -> {steps[-1].next_case}"
    print(f"realized infinite loop: {loop}")
    print()

    # 3. Exhaustive certificate: zero equilibria among 2^20 profiles.
    for alpha in CERTIFIED_ALPHAS:
        certificate = certify_no_nash(alpha=alpha)
        print(
            f"alpha={alpha}: checked {certificate.num_profiles:,} profiles, "
            f"pure Nash equilibria found: {certificate.num_equilibria}"
        )
    print()

    # 4. Generic instances are fine: same n, random geometry.
    random_game = TopologyGame(
        EuclideanMetric.random_uniform(5, dim=2, seed=0), alpha=0.6
    )
    random_result = BestResponseDynamics(random_game).run(max_rounds=200)
    print(f"random 5-peer instance for contrast: {random_result}")

if __name__ == "__main__":
    main()
