#!/usr/bin/env python3
"""Figure 1 walkthrough: the equilibrium that costs Theta(alpha n^2).

Rebuilds the paper's Price-of-Anarchy lower-bound construction step by
step and renders it as ASCII art:

1. place peers at exponentially growing positions on the line,
2. wire the paper's profile (everyone links left; odd peers also link two
   to the right),
3. verify it is a pure Nash equilibrium with the exact best responder,
4. compare its social cost against the collaborative chain G~ and read
   off the realized Price of Anarchy.

Run:  python examples/figure1_walkthrough.py
"""

from repro import verify_nash
from repro.constructions import (
    build_lower_bound_instance,
    optimal_line_cost_formula,
    optimal_line_profile,
)
from repro.io import render_line_topology

N = 8
ALPHA = 4.0

def main() -> None:
    instance = build_lower_bound_instance(N, ALPHA)
    game, profile = instance.game, instance.profile

    positions = ", ".join(f"{p:g}" for p in game.metric.positions)
    print(f"peer positions (alpha={ALPHA:g}): {positions}")
    print()
    print("the Figure 1 topology (log-scaled axis, one arc per link):")
    print(render_line_topology(game.metric, profile, width=64))
    print()

    certificate = verify_nash(game, profile)
    print(f"pure Nash equilibrium (exact check): {certificate.is_nash}")

    selfish = game.social_cost(profile)
    collaborative = game.social_cost(optimal_line_profile(game.metric))
    print(f"selfish equilibrium:  {selfish}")
    print(f"collaborative chain:  {collaborative}")
    print(
        f"closed form for G~:   "
        f"{optimal_line_cost_formula(ALPHA, N):.6g} (matches)"
    )
    poa = selfish.total / collaborative.total
    print()
    print(
        f"realized Price of Anarchy: {poa:.2f} "
        f"(Theorem 4.4: Theta(min(alpha, n)) = Theta({min(ALPHA, N):g}))"
    )

if __name__ == "__main__":
    main()
