#!/usr/bin/env python3
"""Churn vs game-inherent instability: two different reasons to rewire.

The paper's sharpest point is that selfish overlays may never stabilize
*even without churn*.  This example separates the two instability sources
on a 20-peer universe:

1. **no churn** — rewiring activity dies out once the population reaches
   an equilibrium (game-inherent stability),
2. **churn** — every epoch some peers leave and new ones join, so the
   survivors keep re-optimizing: sustained background rewiring even
   though the *game* is perfectly stable,
3. the **witness** — zero churn, yet rewiring never stops, because the
   instability is in the game itself (Theorem 5.1).

Run:  python examples/churn_stability.py
"""

from repro import BestResponseDynamics
from repro.analysis import render_table
from repro.constructions import build_no_nash_instance
from repro.metrics import EuclideanMetric
from repro.simulation import ChurnSimulation

UNIVERSE = 20
ALPHA = 1.5
EPOCHS = 30

def churn_run(join_prob: float, leave_prob: float, label: str) -> dict:
    metric = EuclideanMetric.random_uniform(UNIVERSE, dim=2, seed=11)
    simulation = ChurnSimulation(
        metric,
        alpha=ALPHA,
        join_prob=join_prob,
        leave_prob=leave_prob,
        seed=23,
    )
    result = simulation.run(epochs=EPOCHS)
    first_half = sum(r.moves for r in result.records[: EPOCHS // 2])
    second_half = sum(r.moves for r in result.records[EPOCHS // 2:])
    return {
        "scenario": label,
        "total_moves": result.total_moves,
        "moves_first_half": first_half,
        "moves_second_half": second_half,
        "final_peers": len(result.final_active),
        "mean_cost": result.mean_cost,
    }

def main() -> None:
    rows = [
        churn_run(0.0, 0.0, "static population"),
        churn_run(0.10, 0.10, "moderate churn"),
        churn_run(0.25, 0.25, "heavy churn"),
    ]
    print(render_table(rows, precision=4,
                       title=f"rewiring activity over {EPOCHS} epochs "
                             f"(n<={UNIVERSE}, alpha={ALPHA})"))
    print()
    print("Static populations go quiet (second-half moves -> 0); churned")
    print("populations keep rewiring because the *environment* changes.")
    print()

    witness = build_no_nash_instance()
    result = BestResponseDynamics(witness).run(max_rounds=200)
    print(f"The witness, with zero churn: {result}")
    print("Here the rewiring never stops even though nothing external")
    print("changes — the instability is in the game (Theorem 5.1).")

if __name__ == "__main__":
    main()
