#!/usr/bin/env python3
"""Quickstart: build a game, run selfish dynamics, inspect the equilibrium.

Covers the core loop of the library in ~40 lines:

1. place peers in a metric space (pairwise latencies),
2. pick the trade-off parameter ``alpha`` (link cost vs stretch cost),
3. let every peer selfishly rewire until nobody can improve,
4. verify the result is a pure Nash equilibrium and price the outcome
   against the social optimum (the Price-of-Anarchy bracket).

Run:  python examples/quickstart.py
"""

from repro import BestResponseDynamics, TopologyGame, verify_nash
from repro.core.anarchy import estimate_price_of_anarchy
from repro.metrics import EuclideanMetric

def main() -> None:
    # 16 peers scattered uniformly in the unit square; latency = distance.
    metric = EuclideanMetric.random_uniform(16, dim=2, seed=42)

    # alpha weighs link maintenance against lookup stretch: larger alpha
    # means links are expensive and peers tolerate worse stretches.
    game = TopologyGame(metric, alpha=2.0)

    # Selfish rewiring: peers take turns playing exact best responses.
    result = BestResponseDynamics(game).run(max_rounds=100)
    print(f"dynamics: {result}")

    # Convergence with exact responses certifies a pure Nash equilibrium;
    # double-check with the independent verifier.
    certificate = verify_nash(game, result.profile)
    print(f"equilibrium verified: {certificate.is_nash}")

    breakdown = game.social_cost(result.profile)
    print(f"social cost: {breakdown}")
    degrees = [result.profile.out_degree(i) for i in range(game.n)]
    print(f"out-degrees: min={min(degrees)} max={max(degrees)}")

    # How bad is selfishness here?  Bracket the Price of Anarchy:
    # lower = worst sampled equilibrium / best known topology,
    # upper = the paper's Theorem 4.1 bound O(min(alpha, n)).
    estimate = estimate_price_of_anarchy(game, seed=7)
    print(f"price of anarchy: {estimate}")

if __name__ == "__main__":
    main()
