#!/usr/bin/env python3
"""Price-of-Anarchy phase diagram: measuring Theta(min(alpha, n)).

Sweeps the Figure 1 lower-bound family over a grid of (n, alpha), measures
the realized Price of Anarchy (equilibrium cost over the collaborative
chain baseline), and renders a text heat map.  Reading the diagram:

* moving right (larger alpha, fixed n): PoA grows linearly — the
  alpha-dominated regime,
* moving down (larger n, fixed alpha): PoA saturates at ~alpha once
  n > alpha — the n no longer binds,
* the diagonal alpha ~ n is the crossover Theorem 4.4 predicts.

Run:  python examples/poa_phase_diagram.py
"""

from repro.analysis import render_table
from repro.constructions import (
    build_lower_bound_instance,
    optimal_line_cost_formula,
)

ALPHAS = (3.4, 6.0, 12.0, 24.0, 48.0)
NS = (4, 8, 16, 32, 64)

def realized_poa(n: int, alpha: float) -> float:
    """Equilibrium cost of the Figure 1 family over the chain baseline."""
    instance = build_lower_bound_instance(n, alpha)
    equilibrium_cost = instance.game.social_cost(instance.profile).total
    return equilibrium_cost / optimal_line_cost_formula(alpha, n)

def main() -> None:
    rows = []
    for n in NS:
        row = {"n \\ alpha": n}
        for alpha in ALPHAS:
            row[f"{alpha:g}"] = realized_poa(n, alpha)
        rows.append(row)
    print(render_table(rows, precision=3, title="realized PoA (C(G)/C(G~))"))
    print()

    rows = []
    for n in NS:
        row = {"n \\ alpha": n}
        for alpha in ALPHAS:
            reference = min(alpha, n)
            row[f"{alpha:g}"] = realized_poa(n, alpha) / reference
        rows.append(row)
    print(
        render_table(
            rows,
            precision=3,
            title="PoA / min(alpha, n)  (flat within constants = Theta shape)",
        )
    )

if __name__ == "__main__":
    main()
